"""Tests for the shard-level causal skip predicate (ring hot path)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attention.masks import PAD_SEQ, attention_mask
from repro.core.ring_skip import (
    kv_reach,
    partial_fully_masked,
    query_reach,
    shard_fully_masked,
)

SETTINGS = dict(max_examples=50, deadline=None)


class TestReachSummaries:
    def test_query_reach_per_sequence_max(self):
        pos = np.array([3, 9, 1, 7])
        seq = np.array([0, 0, 1, 1])
        assert query_reach(pos, seq) == {0: 9, 1: 7}

    def test_kv_reach_per_sequence_min(self):
        pos = np.array([3, 9, 1, 7])
        seq = np.array([0, 0, 1, 1])
        assert kv_reach(pos, seq) == {0: 3, 1: 1}

    def test_none_seq_ids_default_to_sequence_zero(self):
        assert query_reach(np.array([4, 2]), None) == {0: 4}
        assert kv_reach(np.array([4, 2]), None) == {0: 2}

    def test_pad_tokens_are_ignored(self):
        pos = np.array([5, 100, 2])
        seq = np.array([0, PAD_SEQ, 0])
        assert query_reach(pos, seq) == {0: 5}
        assert kv_reach(pos, seq) == {0: 2}

    def test_empty_and_all_pad_shards(self):
        assert query_reach(np.zeros(0, dtype=np.int64), None) == {}
        assert kv_reach(np.array([1, 2]), np.full(2, PAD_SEQ)) == {}


class TestPartialFullyMasked:
    def test_visible_when_key_precedes_query(self):
        assert not partial_fully_masked({0: 5}, {0: 5})
        assert not partial_fully_masked({0: 5}, {0: 0})

    def test_masked_when_all_keys_after_queries(self):
        assert partial_fully_masked({0: 5}, {0: 6})

    def test_masked_when_no_shared_sequence(self):
        assert partial_fully_masked({0: 5}, {1: 0})
        assert partial_fully_masked({}, {0: 0})
        assert partial_fully_masked({0: 5}, {})


class TestShardFullyMaskedProperty:
    @given(
        seed=st.integers(0, 2**31 - 1),
        tq=st.integers(0, 12),
        tk=st.integers(0, 12),
        causal=st.booleans(),
    )
    @settings(**SETTINGS)
    def test_matches_materialized_mask(self, seed, tq, tk, causal):
        """The O(T) predicate agrees with ``not attention_mask(...).any()``
        for arbitrary (position, sequence, PAD) layouts."""
        rng = np.random.default_rng(seed)
        q_pos = rng.integers(0, 8, tq)
        k_pos = rng.integers(0, 8, tk)
        q_seq = rng.integers(PAD_SEQ, 2, tq)
        k_seq = rng.integers(PAD_SEQ, 2, tk)
        predicted = shard_fully_masked(q_pos, k_pos, q_seq, k_seq, causal=causal)
        actual = not attention_mask(q_pos, k_pos, q_seq, k_seq, causal=causal).any()
        assert predicted == actual
