"""Unit tests for the replica fleet: topology, id assignment, report
merging, metrics rollups, and the duck-typed workload glue."""

import numpy as np
import pytest

from repro.cluster import ReplicaFleet, make_router
from repro.core.engine import ContextParallelEngine
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel
from repro.runtime import ContinuousBatchingRuntime, TurnRequest
from repro.serving.metrics import FleetMetrics, ServingMetrics
from repro.serving.scheduler import ChunkedPrefillPolicy
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.replay import collect_generated, submit_scripts_to_runtime

MODEL = LlamaModel(tiny_config(), seed=0)
VOCAB = MODEL.config.vocab_size


def make_runtime(_replica_id=0, *, prefix_cache=False):
    return ContinuousBatchingRuntime(
        ContextParallelEngine(MODEL, world_size=1),
        policy=ChunkedPrefillPolicy(
            chunk_tokens=16, max_tokens_per_round=32, max_seqs_per_round=4
        ),
        prefix_cache=prefix_cache,
    )


def make_scripts(n=3, turns=2, seed=3):
    gen = WorkloadGenerator(VOCAB, seed=seed)
    return [gen.conversation(sid, turns=turns, first_prompt=20) for sid in range(n)]


class TestConstruction:
    def test_empty_runtime_list_rejected(self):
        with pytest.raises(ValueError, match="at least one runtime"):
            ReplicaFleet([])

    def test_build_rejects_non_positive_counts(self):
        with pytest.raises(ValueError, match="replica count"):
            ReplicaFleet.build(make_runtime, 0)

    def test_build_calls_factory_with_sequential_ids(self):
        seen = []

        def factory(replica_id):
            seen.append(replica_id)
            return make_runtime()

        fleet = ReplicaFleet.build(factory, 3)
        assert seen == [0, 1, 2]
        assert [r.id for r in fleet.replicas] == [0, 1, 2]

    def test_default_router_is_prefix_affinity(self):
        assert ReplicaFleet([make_runtime()]).router.name == "prefix"

    def test_unknown_replica_id_raises(self):
        with pytest.raises(KeyError, match="unknown replica"):
            ReplicaFleet([make_runtime()]).replica(7)


class TestIdsAndStickiness:
    def test_fleet_assigns_globally_unique_request_ids(self):
        fleet = ReplicaFleet.build(make_runtime, 3, router=make_router("round-robin"))
        scripts = make_scripts(n=4, turns=2)
        rids = [rid for s in scripts for rid in fleet.submit_script(s)]
        assert rids == list(range(8))

    def test_explicit_request_id_honoured_and_advances_counter(self):
        fleet = ReplicaFleet([make_runtime()])
        gen = WorkloadGenerator(VOCAB, seed=0)
        req = TurnRequest(
            request_id=10, seq_id=0, prompt=gen.prompt(8),
            max_new_tokens=2, last_turn=False,
        )
        assert fleet.submit(req) == 10
        follow = TurnRequest(
            request_id=-1, seq_id=0, prompt=gen.prompt(4),
            max_new_tokens=2, last_turn=True,
        )
        assert fleet.submit(follow) == 11

    def test_duplicate_request_id_rejected(self):
        fleet = ReplicaFleet([make_runtime()])
        gen = WorkloadGenerator(VOCAB, seed=0)

        def req(rid, seq, last):
            return TurnRequest(
                request_id=rid, seq_id=seq, prompt=gen.prompt(4),
                max_new_tokens=1, last_turn=last,
            )

        fleet.submit(req(0, 0, False))
        with pytest.raises(ValueError, match="already submitted"):
            fleet.submit(req(0, 1, True))

    def test_follow_up_turns_stick_to_placement(self):
        fleet = ReplicaFleet.build(make_runtime, 3, router=make_router("round-robin"))
        scripts = make_scripts(n=3, turns=3)
        for s in scripts:
            fleet.submit_script(s)
        report = fleet.run(max_steps=200_000)
        assert report.placements == {0: 0, 1: 1, 2: 2}
        for rid, rec in report.records.items():
            assert report.owners[rid] == report.placements[rec.seq_id]

    def test_negative_think_time_rejected(self):
        with pytest.raises(ValueError, match="think_time"):
            ReplicaFleet([make_runtime()]).submit_script(
                make_scripts(n=1)[0], think_time=-1.0
            )


class TestTopologyChanges:
    def test_add_replica_assigns_next_id_and_routes(self):
        fleet = ReplicaFleet.build(make_runtime, 2, router=make_router("round-robin"))
        assert fleet.add_replica(make_runtime()) == 2
        scripts = make_scripts(n=3, turns=1)
        for s in scripts:
            fleet.submit_script(s)
        assert sorted(fleet.placements().values()) == [0, 1, 2]

    def test_join_readmits_a_drained_replica(self):
        fleet = ReplicaFleet.build(make_runtime, 2, router=make_router("round-robin"))
        fleet.drain(0)
        scripts = make_scripts(n=3, turns=1)
        fleet.submit_script(scripts[0])
        assert fleet.placements()[0] == 1
        fleet.join(0)
        fleet.submit_script(scripts[1])
        fleet.submit_script(scripts[2])
        assert 0 in set(fleet.placements().values())


class TestFleetReport:
    @pytest.fixture(scope="class")
    def run(self):
        fleet = ReplicaFleet.build(
            lambda i: make_runtime(i, prefix_cache=True),
            2,
            router=make_router("round-robin"),
        )
        scripts = make_scripts(n=4, turns=2)
        rids = submit_scripts_to_runtime(fleet, scripts)
        report = fleet.run(max_steps=200_000)
        return fleet, scripts, rids, report

    def test_records_merge_every_replica(self, run):
        _fleet, scripts, _rids, report = run
        total = sum(s.turns for s in scripts)
        assert len(report.records) == total
        assert len(report.completed) == total
        assert report.statuses() == {"finished": total}
        per_replica = sum(
            len(r.records) for r in report.replica_reports.values()
        )
        assert per_replica == total

    def test_rollup_counters_sum_replicas(self, run):
        _fleet, _scripts, _rids, report = run
        assert report.prefill_rounds == sum(
            r.prefill_rounds for r in report.replica_reports.values()
        )
        assert report.decode_rounds == sum(
            r.decode_rounds for r in report.replica_reports.values()
        )
        assert report.generated_tokens == sum(
            len(rec.generated) for rec in report.records.values()
        )

    def test_makespan_is_latest_replica_clock(self, run):
        fleet, _scripts, _rids, report = run
        assert report.makespan == max(r.now for r in fleet.replicas)
        assert report.goodput() == pytest.approx(
            len(report.completed) / report.makespan
        )
        assert report.tokens_per_second() == pytest.approx(
            report.generated_tokens / report.makespan
        )

    def test_duck_typed_glue_collects_fleet_streams(self, run):
        """collect_generated written against RuntimeReport works on a
        FleetReport unchanged — the interface lift the workloads glue
        relies on."""
        _fleet, _scripts, rids, report = run
        streams = collect_generated(report, rids)
        assert set(streams) == set(rids)
        for seq_id, turn_rids in rids.items():
            assert streams[seq_id] == [report.generated(r) for r in turn_rids]

    def test_kv_leak_reports_cover_every_replica(self, run):
        fleet, _scripts, _rids, report = run
        audits = fleet.kv_leak_reports()
        assert sorted(audits) == [r.id for r in fleet.replicas]
        assert all(not leaks for leaks in audits.values())


class TestFleetMetrics:
    def test_duplicate_replica_rejected(self):
        fm = FleetMetrics()
        fm.add_replica(0, ServingMetrics(), 1.0)
        with pytest.raises(ValueError, match="already added"):
            fm.add_replica(0, ServingMetrics(), 2.0)

    def test_rollups_sum_over_replicas(self):
        from repro.serving.request import TurnRecord

        def turn():
            return TurnRecord(
                seq_id=0, prompt_tokens=1, cached_tokens=0,
                response_tokens=1, algo="pass-kv",
            )

        fm = FleetMetrics()
        a, b = ServingMetrics(), ServingMetrics()
        for _ in range(3):
            a.record_turn(turn())
        a.record_prefix_hit(10)
        b.record_turn(turn())
        b.record_prefix_miss()
        fm.add_replica(0, a, 2.0)
        fm.add_replica(1, b, 4.0)
        assert fm.completed_requests == 4
        assert (fm.prefix_hits, fm.prefix_misses) == (1, 1)
        assert fm.prefix_hit_rate == pytest.approx(0.5)
        assert fm.replica_goodput(0) == pytest.approx(1.5)
        assert fm.fleet_goodput(4.0) == pytest.approx(1.0)
        assert fm.fleet_goodput(0.0) == 0.0

    def test_ttft_percentiles_pool_replica_samples(self):
        fm = FleetMetrics()
        a, b = ServingMetrics(), ServingMetrics()
        a.ttft_samples.append(1.0)
        a.record_ttft_split(1.0, warm=True)
        b.ttft_samples.append(3.0)
        b.record_ttft_split(3.0, warm=False)
        fm.add_replica(0, a, 1.0)
        fm.add_replica(1, b, 1.0)
        assert fm.percentile_ttft(50) == pytest.approx(2.0)
        assert fm.percentile_ttft_split(50, warm=True) == pytest.approx(1.0)
        assert fm.percentile_ttft_split(50, warm=False) == pytest.approx(3.0)
        empty = FleetMetrics()
        assert np.isnan(empty.percentile_ttft(50))

    def test_summary_mentions_every_replica(self):
        fm = FleetMetrics()
        fm.add_replica(0, ServingMetrics(), 1.0)
        fm.add_replica(1, ServingMetrics(), 1.0)
        text = fm.summary()
        assert "replicas: 2" in text
        assert "replica 0:" in text and "replica 1:" in text


class TestStepInterleaving:
    def test_step_advances_furthest_behind_replica(self):
        fleet = ReplicaFleet.build(make_runtime, 2, router=make_router("round-robin"))
        scripts = make_scripts(n=2, turns=1)
        for s in scripts:
            fleet.submit_script(s)
        while fleet.step():
            clocks = sorted(r.now for r in fleet.replicas if r.live())
            live = [r for r in fleet.replicas if r.live()]
            if len(live) == 2:
                # the lagging replica is never more than one round ahead
                # of where the leader was when it was chosen
                assert clocks[0] <= fleet.now
        assert fleet.run().statuses() == {"finished": 2}
