"""Tests for workload replay glue."""

import numpy as np
import pytest

from repro.core.engine import ContextParallelEngine
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.replay import replay_script_numeric, script_to_arrivals


class TestScriptToArrivals:
    def test_contexts_accumulate(self):
        gen = WorkloadGenerator(100, seed=1)
        script = gen.conversation(0, turns=3, first_prompt=50, followup_range=(4, 4),
                                  response_range=(2, 2))
        arrivals = script_to_arrivals([script])
        assert len(arrivals) == 3
        assert arrivals[0].context_tokens == 50
        # turn 2 context = 50 + 2 (response) + 4 (new prompt)
        assert arrivals[1].context_tokens == 56
        assert arrivals[2].context_tokens == 62

    def test_turn_spacing(self):
        gen = WorkloadGenerator(100, seed=2)
        script = gen.conversation(0, turns=2, first_prompt=10)
        arrivals = script_to_arrivals([script], turn_gap_s=5.0, start_offset_s=1.0)
        assert arrivals[0].time == pytest.approx(1.0)
        assert arrivals[1].time == pytest.approx(6.0)

    def test_multiple_conversations_staggered_and_sorted(self):
        gen = WorkloadGenerator(100, seed=3)
        scripts = [gen.conversation(i, turns=2, first_prompt=10) for i in range(3)]
        arrivals = script_to_arrivals(scripts, turn_gap_s=10.0, start_offset_s=1.0)
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert len({a.request_id for a in arrivals}) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            script_to_arrivals([], turn_gap_s=-1)


class TestReplayNumeric:
    def test_records_and_hit_rates(self):
        model = LlamaModel(tiny_config(), seed=9)
        engine = ContextParallelEngine(model, world_size=2)
        gen = WorkloadGenerator(model.config.vocab_size, seed=4)
        script = gen.conversation(
            0, turns=3, first_prompt=60, followup_range=(2, 3), response_range=(1, 2)
        )
        records = replay_script_numeric(engine, script)
        assert len(records) == 3
        assert records[0]["miss_rate"] == 1.0
        assert records[1]["miss_rate"] < 0.1
        assert all(len(r["generated"]) >= 1 for r in records)
        # engine context equals total prompt + generated tokens
        total = script.total_prompt_tokens + sum(len(r["generated"]) for r in records)
        assert engine.context_length(0) == total
