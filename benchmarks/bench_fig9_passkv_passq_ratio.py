"""Figure 9: pass-KV / pass-Q speed ratio vs KV-cache miss rate."""

from repro.experiments import table4_fig9_partial_prefill as t4


def bench_fig9_ratio_curve(benchmark, paper_table):
    result = benchmark(t4.run)
    paper_table(benchmark, result)
    rates = [r / 100 for r in result.column("miss%")]
    ratios = result.column("KV/Q ratio")

    # ratio > 1 (pass-Q wins) at the lowest miss rates, < 1 at high
    assert ratios[0] > 1.05
    assert ratios[-1] < 0.95
    # monotonically decreasing ratio (pass-KV gains as miss rate rises)
    assert ratios == sorted(ratios, reverse=True)
    # crossover within the paper's near-tie band (2.5% - 5%)
    crossover = t4.crossover_miss_rate(result)
    assert 0.025 <= crossover <= 0.05, f"crossover at {crossover:.3%}"


if __name__ == "__main__":
    result = t4.run()
    print(result.render())
    print(f"\ncrossover miss rate: {t4.crossover_miss_rate(result):.3%}")
