"""Serving metrics aggregation (TTFT / TTIT / cache hit rates)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serving.request import TurnRecord


@dataclass
class ServingMetrics:
    """Rolling aggregate over completed turns.

    TTFT/TTIT samples come from the analytic simulator or the serving
    runtime's step clock (seconds); token and cache-hit accounting comes
    from the numeric engine's turn records. Preemption/eviction counters
    are fed by the continuous-batching runtime's capacity-pressure path.
    """

    ttft_samples: list[float] = field(default_factory=list)
    ttit_samples: list[float] = field(default_factory=list)
    turns: list[TurnRecord] = field(default_factory=list)
    preemptions: int = 0
    evicted_tokens: int = 0

    def record_turn(self, turn: TurnRecord, *, ttft: float | None = None, ttit: float | None = None) -> None:
        self.turns.append(turn)
        if ttft is not None:
            self.ttft_samples.append(float(ttft))
        if ttit is not None:
            self.ttit_samples.append(float(ttit))

    def record_ttit(self, ttit: float) -> None:
        """Record one inter-token gap (runtime decode streaming)."""
        self.ttit_samples.append(float(ttit))

    def record_preemption(self, evicted_tokens: int) -> None:
        """Count one capacity-pressure preemption and the KV it evicted."""
        self.preemptions += 1
        self.evicted_tokens += int(evicted_tokens)

    # ------------------------------- views ------------------------------ #

    @property
    def total_prompt_tokens(self) -> int:
        return sum(t.prompt_tokens for t in self.turns)

    @property
    def total_generated_tokens(self) -> int:
        return sum(t.response_tokens for t in self.turns)

    @property
    def mean_cache_hit_rate(self) -> float:
        """Average of ``P / (T + P)`` over turns (1 - miss rate)."""
        if not self.turns:
            return 0.0
        return float(np.mean([1.0 - t.miss_rate for t in self.turns]))

    def algo_counts(self) -> dict[str, int]:
        """Prefill algorithm selection frequencies."""
        counts: dict[str, int] = {}
        for t in self.turns:
            counts[t.algo] = counts.get(t.algo, 0) + 1
        return counts

    def percentile_ttft(self, q: float) -> float:
        """TTFT percentile in seconds; ``nan`` when no samples exist."""
        if not self.ttft_samples:
            return float("nan")
        return float(np.percentile(self.ttft_samples, q))

    def percentile_ttit(self, q: float) -> float:
        """TTIT percentile in seconds; ``nan`` when no samples exist."""
        if not self.ttit_samples:
            return float("nan")
        return float(np.percentile(self.ttit_samples, q))

    def summary(self) -> str:
        lines = [
            f"turns: {len(self.turns)}",
            f"prompt tokens: {self.total_prompt_tokens}",
            f"generated tokens: {self.total_generated_tokens}",
            f"mean cache hit rate: {self.mean_cache_hit_rate:.3f}",
            f"algo counts: {self.algo_counts()}",
            f"preemptions: {self.preemptions} ({self.evicted_tokens} KV tokens evicted)",
        ]
        if self.ttft_samples:
            lines.append(
                "TTFT p50/p95/p99: "
                f"{self.percentile_ttft(50):.3f}/{self.percentile_ttft(95):.3f}/"
                f"{self.percentile_ttft(99):.3f}s"
            )
        if self.ttit_samples:
            lines.append(
                "TTIT p50/p95/p99: "
                f"{self.percentile_ttit(50) * 1e3:.2f}/{self.percentile_ttit(95) * 1e3:.2f}/"
                f"{self.percentile_ttit(99) * 1e3:.2f}ms"
            )
        return "\n".join(lines)
