"""Core contribution: context-parallel ring attention for inference.

This package implements the paper's primary contribution on top of the
substrates (:mod:`repro.attention`, :mod:`repro.distributed`,
:mod:`repro.kvcache`, :mod:`repro.model`, :mod:`repro.perf`):

- :mod:`repro.core.sharding` — load-balanced 2N-chunk sharding (§3.5.1).
- :mod:`repro.core.merge` — merge attention (Appendix B, Eq. 4).
- :mod:`repro.core.ring_passkv` — Algorithm 2: fused varseq ring pass-KV
  partial/full prefill.
- :mod:`repro.core.ring_passq` — Algorithm 3: ring pass-Q prefill with
  permute + All2All output restore.
- :mod:`repro.core.ring_decode` — Algorithm 4: batched round-robin ring
  pass-Q decode.
- :mod:`repro.core.heuristics` — Algorithms 1 & 5 and the empirical
  ``h(T, P)`` selector (Appendix D).
- :mod:`repro.core.engine` — the multi-turn context-parallel inference
  engine tying everything together (full prefill -> decode -> partial
  prefill with persistent sharded KV cache).
"""

from repro.core.heuristics import (
    HeuristicConfig,
    RingAlgo,
    select_algo_simple,
    select_algo_with_all2all,
    select_algo_empirical,
)
from repro.core.merge import merge_attention, merge_partials
from repro.core.ring_decode import ring_passq_decode
from repro.core.ring_passkv import ring_passkv_prefill
from repro.core.ring_passq import ring_passq_prefill
from repro.core.sharding import (
    ShardedKV,
    ShardedQueries,
    SequenceSpec,
    load_balanced_chunks,
    pad_kv_shards,
    shard_positions,
    shard_sequences,
)

__all__ = [
    "HeuristicConfig",
    "RingAlgo",
    "SequenceSpec",
    "ShardedKV",
    "ShardedQueries",
    "load_balanced_chunks",
    "merge_attention",
    "merge_partials",
    "pad_kv_shards",
    "ring_passkv_prefill",
    "ring_passq_decode",
    "ring_passq_prefill",
    "select_algo_empirical",
    "select_algo_simple",
    "select_algo_with_all2all",
    "shard_positions",
    "shard_sequences",
]
