"""Tests for the KV-transfer stream and transfer pricing."""

import pytest

from repro.model.config import llama3_405b_config
from repro.perf.hardware import gtt_host
from repro.perf.latency import LatencySimulator
from repro.runtime.clock import SimulatedStepClock, UnitStepClock
from repro.runtime.transfer import KVTransferStream


class TestTransferPricing:
    def test_unit_clock_fixed_cost(self):
        c = UnitStepClock(transfer_cost=2.5)
        assert c.price_transfer(1) == 2.5
        assert c.price_transfer(10_000) == 2.5

    def test_unit_clock_zero_tokens_free(self):
        assert UnitStepClock().price_transfer(0) == 0.0

    def test_unit_clock_validation(self):
        with pytest.raises(ValueError):
            UnitStepClock(transfer_cost=-1.0)
        with pytest.raises(ValueError):
            UnitStepClock().price_transfer(-1)

    def test_simulated_clock_bandwidth_model(self):
        sim = LatencySimulator(llama3_405b_config(), gtt_host())
        clock = SimulatedStepClock(sim, n_ranks=4)
        tokens = 131072
        want = tokens * sim.config.kv_bytes_per_token(sim.element_bytes) / sim.host.ring_bandwidth
        assert clock.price_transfer(tokens) == pytest.approx(want)
        assert clock.price_transfer(0) == 0.0
        # linear in payload
        assert clock.price_transfer(2 * tokens) == pytest.approx(2 * clock.price_transfer(tokens))

    def test_simulated_clock_tp_decode_pricing(self):
        sim = LatencySimulator(llama3_405b_config(), gtt_host())
        cp = SimulatedStepClock(sim, n_ranks=4)
        tp = SimulatedStepClock(sim, n_ranks=4, tp_decode=True)
        ctx = [131072]
        assert tp.price_decode(ctx) == pytest.approx(sim.tp_decode(131072, batch=1, n_nodes=1).total)
        # the dedicated decode host avoids the CP decode regression
        assert tp.price_decode(ctx) < cp.price_decode(ctx)


class TestKVTransferStream:
    def make(self, cost=2.0):
        return KVTransferStream(UnitStepClock(transfer_cost=cost))

    def test_schedule_and_ready(self):
        s = self.make()
        t = s.schedule(seq_id=0, request_id=10, tokens=16, now=1.0)
        assert (t.start, t.finish) == (1.0, 3.0)
        assert s.ready(2.9) == []
        assert s.ready(3.0) == [t]
        s.complete(t)
        assert s.in_flight() == []

    def test_channel_serializes(self):
        """A transfer scheduled while the wire is busy queues behind it."""
        s = self.make(cost=5.0)
        a = s.schedule(0, 1, 8, now=0.0)
        b = s.schedule(1, 2, 8, now=1.0)  # wire busy until 5.0
        assert a.finish == 5.0
        assert (b.start, b.finish) == (5.0, 10.0)
        assert s.busy_until == 10.0
        assert s.busy_s == 10.0

    def test_zero_token_transfer(self):
        """An up-to-date destination yields a legal zero-length transfer."""
        s = self.make()
        t = s.schedule(0, 1, 0, now=4.0)
        assert t.finish == 4.0
        assert s.ready(4.0) == [t]
        s.complete(t)
        assert s.in_flight() == []
        assert s.busy_s == 0.0

    def test_cancel_mid_stream(self):
        """Eviction mid-stream drops the payload but not the wire time."""
        s = self.make(cost=3.0)
        s.schedule(0, 1, 8, now=0.0)
        cancelled = s.cancel(0)
        assert cancelled is not None and cancelled.seq_id == 0
        assert s.in_flight() == []
        # the channel stays busy: a later transfer still queues behind
        assert s.schedule(1, 2, 8, now=0.0).start == 3.0

    def test_cancel_unknown_is_noop(self):
        s = self.make()
        assert s.cancel(7) is None

    def test_duplicate_in_flight_rejected(self):
        s = self.make()
        s.schedule(0, 1, 8, now=0.0)
        with pytest.raises(ValueError):
            s.schedule(0, 2, 4, now=0.0)

    def test_negative_tokens_rejected(self):
        with pytest.raises(ValueError):
            self.make().schedule(0, 1, -1, now=0.0)

    def test_ready_orders_by_finish(self):
        s = self.make(cost=1.0)
        a = s.schedule(0, 1, 8, now=0.0)
        b = s.schedule(1, 2, 8, now=0.0)
        assert s.ready(10.0) == [a, b]
        assert s.in_flight() == [a, b]

    def test_extend_reships_extra_tokens(self):
        """Growing an in-flight payload occupies the wire again for the
        extra tokens only, pushing its finish out."""
        s = self.make(cost=3.0)
        t = s.schedule(0, 1, 8, now=0.0)
        assert t.finish == 3.0
        s.extend(t, 40, now=5.0)
        assert t.tokens == 48
        assert (t.start, t.finish) == (0.0, 8.0)  # 5.0 + another 3.0 on the wire
        assert s.busy_until == 8.0
        assert s.busy_s == 6.0
        assert s.ready(7.9) == []
        assert s.ready(8.0) == [t]

    def test_extend_validation(self):
        s = self.make()
        t = s.schedule(0, 1, 8, now=0.0)
        with pytest.raises(ValueError):
            s.extend(t, 0, now=0.0)
        s.cancel(0)
        with pytest.raises(ValueError, match="not in flight"):
            s.extend(t, 4, now=0.0)
