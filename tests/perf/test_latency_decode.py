"""Behavioral tests for the decode latency model (§4.3 shape properties)."""

import pytest

from repro.model.config import llama3_405b_config
from repro.perf.hardware import gtt_host
from repro.perf.latency import LatencySimulator


@pytest.fixture(scope="module")
def sim():
    return LatencySimulator(llama3_405b_config(), gtt_host())


class TestContextScalability:
    def test_ttit_flat_in_context(self, sim):
        """Table 6: TTIT barely moves from 8K to 128K (weights dominate)."""
        t8k = sim.tp_decode(8192, n_nodes=1).total
        t128k = sim.tp_decode(131072, n_nodes=1).total
        assert (t128k - t8k) / t8k < 0.15

    def test_cp_ttit_flat_in_context(self, sim):
        t8k = sim.cp_decode(8192, n_ranks=2).total
        t128k = sim.cp_decode(131072, n_ranks=2).total
        assert (t128k - t8k) / t8k < 0.15


class TestParallelismScalability:
    def test_cp_decode_degrades_with_ranks(self, sim):
        """§4.3: CP decode TTIT *increases* with more hosts."""
        ttits = [sim.cp_decode(131072, n_ranks=n).total for n in (1, 2, 4)]
        assert ttits == sorted(ttits)

    def test_individual_attn_op_shrinks(self, sim):
        """Table 8: per-op time falls as effective context shrinks..."""
        ops = [sim.cp_decode(131072, n_ranks=n).attn_op for n in (1, 2, 4)]
        assert ops == sorted(ops, reverse=True)

    def test_but_whole_passq_grows(self, sim):
        """...while the whole per-layer attention path grows (comm wins)."""
        wholes = [sim.cp_decode(131072, n_ranks=n).whole_attn for n in (1, 2, 4)]
        assert wholes == sorted(wholes)

    def test_tp4_nodes_worse_than_single(self, sim):
        """Table 7: 4-node decode can be slower than 1-node (both TP/CP)."""
        assert sim.tp_decode(131072, n_nodes=4).total > sim.tp_decode(131072, n_nodes=1).total
        assert sim.cp_decode(131072, n_ranks=4).total > sim.cp_decode(131072, n_ranks=1).total

    def test_weights_time_parallelizes_in_tp(self, sim):
        w1 = sim.tp_decode(131072, n_nodes=1).weights
        w2 = sim.tp_decode(131072, n_nodes=2).weights
        assert w2 == pytest.approx(w1 / 2)

    def test_weights_time_fixed_in_cp(self, sim):
        """CP replicates weights per rank — no weight-streaming speedup."""
        w1 = sim.cp_decode(131072, n_ranks=1).weights
        w4 = sim.cp_decode(131072, n_ranks=4).weights
        assert w4 == pytest.approx(w1)


class TestBatching:
    def test_batch4_32k_table8_shape(self, sim):
        """Table 8 lower panel: batch 4 at 32K follows the same pattern."""
        wholes = [sim.cp_decode(32768, batch=4, n_ranks=n).whole_attn for n in (1, 2, 4)]
        assert wholes == sorted(wholes)

    def test_batch_padding_effect(self, sim):
        """B=1 on CP4 still processes ceil(1/4)=1 query per rank: total
        queries processed rise from 1 to 4 — the padding overhead the
        paper calls out."""
        b1 = sim.cp_decode(131072, batch=1, n_ranks=4)
        b4 = sim.cp_decode(131072, batch=4, n_ranks=4)
        # same per-rank query count (1), so identical attention path
        assert b1.attn_op == pytest.approx(b4.attn_op)

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            sim.cp_decode(0, n_ranks=2)
        with pytest.raises(ValueError):
            sim.cp_decode(100, batch=0, n_ranks=2)
