"""Tests for the engine's generation convenience loop."""

import numpy as np
import pytest

from repro.core.engine import ContextParallelEngine
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel


@pytest.fixture(scope="module")
def model():
    return LlamaModel(tiny_config(), seed=31)


class TestGenerate:
    def test_greedy_matches_single_device(self, model):
        engine = ContextParallelEngine(model, world_size=3)
        prompt = (np.arange(9) * 5) % model.config.vocab_size
        got = engine.generate({0: prompt}, max_new_tokens=4)[0]

        history = list(prompt)
        expected = []
        for _ in range(4):
            logits = model.forward(np.array(history))
            tok = int(np.argmax(logits[-1]))
            expected.append(tok)
            history.append(tok)
        assert got == expected

    def test_batched_generation(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        prompts = {
            0: np.arange(6) % model.config.vocab_size,
            1: (np.arange(10) + 1) % model.config.vocab_size,
        }
        out = engine.generate(prompts, max_new_tokens=3)
        assert set(out) == {0, 1}
        assert all(len(v) == 3 for v in out.values())

    def test_temperature_deterministic_with_rng(self, model):
        a = ContextParallelEngine(model, world_size=2).generate(
            {0: np.arange(5)}, max_new_tokens=3,
            temperature=1.0, rng=np.random.default_rng(4),
        )
        b = ContextParallelEngine(model, world_size=2).generate(
            {0: np.arange(5)}, max_new_tokens=3,
            temperature=1.0, rng=np.random.default_rng(4),
        )
        assert a == b

    def test_stop_tokens_end_early(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        prompt = np.arange(8) % model.config.vocab_size
        # find the first greedy token, then stop on it
        probe = ContextParallelEngine(model, world_size=2).generate(
            {0: prompt}, max_new_tokens=1
        )[0][0]
        out = engine.generate({0: prompt}, max_new_tokens=5, stop_tokens={probe})
        assert out[0] == [probe]

    def test_zero_budget(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        out = engine.generate({0: np.arange(4)}, max_new_tokens=0)
        assert out[0] == []

    def test_validation(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        with pytest.raises(ValueError):
            engine.generate({0: np.arange(4)}, max_new_tokens=-1)
        with pytest.raises(ValueError):
            engine.generate({0: np.arange(4)}, max_new_tokens=2, temperature=0.5)
