"""Fused variable-length batch serving through the scheduler.

Drives the full serving stack: a FIFO of mixed-length prefill requests is
packed into fused varseq rounds (Figure 1), each round runs one
context-parallel prefill over the shared engine, and every sequence then
decodes a short response. Demonstrates that fusion preserves per-sequence
exactness and that the KV cache stays balanced across ranks.

Run:  python examples/fused_batch_serving.py
"""

import numpy as np

from repro import ContextParallelEngine, LlamaModel, tiny_config
from repro.model.sampling import sample_greedy
from repro.serving.request import PrefillRequest
from repro.serving.scheduler import Scheduler
from repro.workloads.generator import WorkloadGenerator


def main() -> None:
    model = LlamaModel(tiny_config(), seed=5)
    engine = ContextParallelEngine(model, world_size=3)
    gen = WorkloadGenerator(model.config.vocab_size, seed=9)

    scheduler = Scheduler(max_tokens_per_batch=96, max_seqs_per_batch=4)
    lengths = [40, 18, 33, 25, 61, 12]
    for sid, n in enumerate(lengths):
        scheduler.submit(PrefillRequest(seq_id=sid, token_ids=gen.prompt(n), max_new_tokens=3))
    print(f"queued {scheduler.pending()} requests, lengths {lengths}")

    prompts_seen: dict[int, np.ndarray] = {}
    round_idx = 0
    while (batch := scheduler.next_batch()) is not None:
        prompts = batch.prompts()
        prompts_seen.update(prompts)
        out = engine.prefill(prompts)
        print(
            f"round {round_idx}: fused {batch.seq_ids} "
            f"({batch.total_new_tokens} tokens) algo={out.plan.algo.value}"
        )

        # per-sequence exactness inside the fused round
        for sid, toks in prompts.items():
            ref = model.forward(toks)
            err = np.abs(out.logits[sid] - ref).max()
            assert err < 1e-9, f"sequence {sid} diverged: {err}"

        # short batched decode for the whole round
        next_tokens = {
            sid: int(sample_greedy(out.last_logits(sid))) for sid in prompts
        }
        for _ in range(3):
            step = engine.decode(next_tokens)
            next_tokens = {
                sid: int(sample_greedy(step.logits[sid])) for sid in next_tokens
            }
        round_idx += 1

    print()
    for sid in sorted(prompts_seen):
        counts = engine.cached_tokens(sid)
        total = engine.context_length(sid)
        print(f"seq {sid}: context {total:>3} tokens, per-rank cache {counts}")
    print("all fused rounds exact; cache balanced across ranks")


if __name__ == "__main__":
    main()
