"""Rotary position embeddings (RoPE).

The model substrate applies RoPE to Q and K projections *before* attention,
using the token's absolute position. Because load-balanced CP sharding
scatters tokens across ranks, each rank applies RoPE locally with the global
positions its shard carries — no communication is needed and the result is
identical to single-device execution. This module is therefore part of the
"lossless exact" test surface: end-to-end CP transformer tests would fail if
positions were mishandled anywhere in the sharding pipeline.

Implements the interleaved-pair rotation used by Llama, with the optional
frequency scaling knob exposed for long-context variants.
"""

from __future__ import annotations

import numpy as np


def rope_frequencies(head_dim: int, *, theta: float = 500000.0) -> np.ndarray:
    """Per-pair inverse frequencies ``[head_dim // 2]``.

    Args:
        head_dim: attention head dimension (must be even).
        theta: RoPE base; Llama3 uses 500000.
    """
    if head_dim % 2 != 0:
        raise ValueError(f"head_dim must be even for RoPE, got {head_dim}")
    exponents = np.arange(0, head_dim, 2, dtype=np.float64) / head_dim
    return 1.0 / (theta**exponents)


def apply_rope(
    x: np.ndarray,
    positions: np.ndarray,
    *,
    theta: float = 500000.0,
    freqs: np.ndarray | None = None,
) -> np.ndarray:
    """Rotate ``[T, H, DH]`` embeddings by their absolute positions.

    Args:
        x: ``[T, H, DH]`` query or key tensor.
        positions: ``[T]`` absolute token positions.
        theta: RoPE base (ignored when ``freqs`` is given).
        freqs: precomputed :func:`rope_frequencies` output.

    Returns:
        Rotated tensor with the same shape and dtype promoted to float64.
    """
    x = np.asarray(x, dtype=np.float64)
    positions = np.asarray(positions, dtype=np.float64)
    if x.ndim != 3:
        raise ValueError(f"expected [T, H, DH], got shape {x.shape}")
    if positions.shape[0] != x.shape[0]:
        raise ValueError(f"positions {positions.shape} must match tokens {x.shape[0]}")

    if freqs is None:
        freqs = rope_frequencies(x.shape[-1], theta=theta)
    angles = positions[:, None] * freqs[None, :]  # [T, DH/2]
    cos = np.cos(angles)[:, None, :]  # [T, 1, DH/2]
    sin = np.sin(angles)[:, None, :]

    x_even = x[..., 0::2]
    x_odd = x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x_even * cos - x_odd * sin
    out[..., 1::2] = x_even * sin + x_odd * cos
    return out
