"""Tests for ring-schedule index arithmetic."""

import pytest

from repro.distributed.ring import ring_neighbors, source_rank_at_step, visit_order


class TestNeighbors:
    def test_ring_of_four(self):
        assert ring_neighbors(0, 4) == (3, 1)
        assert ring_neighbors(3, 4) == (2, 0)

    def test_singleton(self):
        assert ring_neighbors(0, 1) == (0, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_neighbors(4, 4)
        with pytest.raises(ValueError):
            ring_neighbors(0, 0)


class TestSourceRank:
    def test_step_zero_is_self(self):
        for n in (1, 2, 5):
            for k in range(n):
                assert source_rank_at_step(k, 0, n) == k

    def test_paper_formula(self):
        """s = (k - j) mod N, Algorithms 2-4."""
        n = 5
        for k in range(n):
            for j in range(n):
                assert source_rank_at_step(k, j, n) == (k - j) % n

    def test_full_sweep_visits_all(self):
        for n in (1, 2, 3, 8):
            for k in range(n):
                assert sorted(visit_order(k, n)) == list(range(n))

    def test_consistency_with_shift(self):
        """After j shifts (each rank receives from prev), rank k holds the
        payload originally at (k - j) mod N."""
        n = 6
        holders = list(range(n))  # holders[k] = origin of payload at rank k
        for j in range(1, n):
            holders = [holders[(k - 1) % n] for k in range(n)]
            for k in range(n):
                assert holders[k] == source_rank_at_step(k, j, n)

    def test_negative_step(self):
        with pytest.raises(ValueError):
            source_rank_at_step(0, -1, 4)
