"""Tuning the pass-KV/pass-Q selector: Algorithms 1 and 5 vs the oracle.

Reproduces the paper's Appendix C/D workflow: sweep (T, miss-rate) space
with the calibrated latency model, compare each published selector's
choices against the simulated oracle, and refit the empirical linear
boundary h(T, P) on the sweep.

Run:  python examples/heuristic_tuning.py
"""

import numpy as np

from repro import LatencySimulator, RingAlgo, gtt_host, llama3_405b_config
from repro.core.heuristics import (
    fit_empirical,
    select_algo_simple,
    select_algo_with_all2all,
)
from repro.experiments.fig10_heuristic import sweep_points


def regret(sim, selector, points, n_ranks=4) -> tuple[float, float]:
    """(mean %, max %) extra latency from following `selector` vs oracle."""
    regrets = []
    for t, p in points:
        kv = sim.cp_prefill(t, p, n_ranks=n_ranks, algo=RingAlgo.PASS_KV).total
        qq = sim.cp_prefill(t, p, n_ranks=n_ranks, algo=RingAlgo.PASS_Q).total
        best = min(kv, qq)
        chosen = kv if selector(t, p) is RingAlgo.PASS_KV else qq
        regrets.append(chosen / best - 1.0)
    return float(np.mean(regrets)) * 100, float(np.max(regrets)) * 100


def main() -> None:
    sim = LatencySimulator(llama3_405b_config(), gtt_host())
    hc = sim.heuristic_config(4)
    print(f"static thresholds for CP4/GTT:")
    print(f"  Eq.1  miss-rate ratio 2*NKV/NH        = {hc.kv_message_ratio:.3f}")
    print(f"  Eq.2  pass-KV overlap threshold (T)   = {hc.passkv_overlap_threshold:,.0f} tokens")
    print(f"  Eq.3  pass-Q overlap threshold (T+P)  = {hc.passq_overlap_threshold:,.0f} tokens")
    print()

    # sweep grid: T x miss-rate, total bounded at 128K-ish contexts
    points = []
    for t in (512, 1024, 2048, 4096, 8192, 16384, 32768, 65536):
        for rate in (0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0):
            p = int(t / rate) - t
            points.append((t, p))

    for name, sel in (
        ("Algorithm 1 (overlap + message size)", lambda t, p: select_algo_simple(hc, t, p)),
        ("Algorithm 5 (All2All-aware)", lambda t, p: select_algo_with_all2all(hc, t, p)),
        ("always pass-KV", lambda t, p: RingAlgo.PASS_KV),
        ("always pass-Q", lambda t, p: RingAlgo.PASS_Q),
    ):
        mean_r, max_r = regret(sim, sel, points)
        print(f"{name:<38} mean regret {mean_r:5.2f}%   max regret {max_r:5.1f}%")

    print()
    t_arr, p_arr, labels, _ = sweep_points(sim)
    alpha, beta, gamma = fit_empirical(t_arr, p_arr, labels)
    print("refit of Appendix D's empirical boundary on simulated data:")
    print(f"  h(T, P) = {alpha:+.3f} ln(T) {beta:+.3f} ln(T/(T+P)) {gamma:+.3f}")
    print(f"  (paper's published fit: -1.059, +1.145, +12.112 on production traces)")
    h = alpha * np.log(t_arr) + beta * np.log(t_arr / (t_arr + p_arr)) + gamma
    print(f"  boundary agreement on sweep: {np.mean((h > 0) == labels):.1%}")


if __name__ == "__main__":
    main()
