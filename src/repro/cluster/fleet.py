"""Multi-replica fleet: N independent runtimes behind a router.

The cluster tier the ROADMAP's "millions of users" north star needs,
built Mooncake/SGLang-shaped: each :class:`Replica` wraps one
:class:`repro.runtime.runtime.ContinuousBatchingRuntime` (colocated or
disaggregated, its own simulated clocks), and a
:class:`repro.cluster.router.Router` decides which replica serves each
*new* conversation. Three fleet-level rules keep the whole thing exactly
replayable:

- **Globally unique request ids.** The fleet assigns every turn's id
  from one counter before handing it to a replica, so the merged
  :class:`FleetReport` keyspace is collision-free and a fleet rid means
  the same thing everywhere.
- **Session stickiness.** A conversation's first turn is routed; every
  follow-up turn goes to the same replica — its KV lives there.
  Stickiness overrides :meth:`ReplicaFleet.drain`: draining only stops
  *new* conversations, resident ones finish where they are.
- **Causal interleaving.** :meth:`ReplicaFleet.step` always advances the
  replica that is furthest behind in simulated time (ties to the lowest
  id), so cross-replica event order is deterministic and independent of
  submission thread/order accidents.

Exactness rescope: because replicas share nothing at execution time
(routing only picks a placement before any engine round runs), every
completed request's greedy token stream is bit-identical to sequential
:class:`repro.serving.session.ChatSession` replay *regardless of routing
policy, replica count, drain schedule, or injected faults* — the
property ``tests/properties/test_prop_cluster.py`` pins. Routing changes
placement, timing, and completion; never values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.router import PrefixAffinityRouter, Router
from repro.obs.trace import NULL_TRACER
from repro.runtime.runtime import ContinuousBatchingRuntime, RuntimeReport
from repro.runtime.state import RequestRecord, RequestState, TurnRequest
from repro.serving.metrics import FleetMetrics
from repro.workloads.generator import ConversationScript


class Replica:
    """One runtime slot in the fleet: identity, drain flag, and the
    read-only views routers score (delegating to the runtime's
    scheduler-facing interface)."""

    def __init__(self, replica_id: int, runtime: ContinuousBatchingRuntime):
        self.id = replica_id
        self.runtime = runtime
        self.draining = False

    @property
    def now(self) -> float:
        return self.runtime.now

    def live(self) -> bool:
        return self.runtime.live_requests() > 0

    def queue_depth(self) -> int:
        return self.runtime.queue_depth()

    def queued_tokens(self) -> int:
        return self.runtime.queued_tokens()

    def busy_time(self) -> float:
        return self.runtime.busy_time()

    def match_len(self, tokens) -> int:
        return self.runtime.prefix_match_len(tokens)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Replica(id={self.id}, draining={self.draining}, "
            f"live={self.runtime.live_requests()}, now={self.now:.3f})"
        )


@dataclass
class FleetReport:
    """Merged outcome of a fleet run.

    Like :class:`repro.runtime.runtime.RuntimeReport` this is a *live
    view* over the replicas' mutable state (take it after the fleet
    drains for a stable read), and it deliberately mirrors the runtime
    report's query surface — ``records`` / ``generated`` / ``completed``
    / ``statuses`` / ``goodput`` — so workload glue and verification
    harnesses written against one runtime work against a fleet unchanged.

    Attributes:
        replica_reports: each replica's own :class:`RuntimeReport`.
        owners: fleet request id -> replica id that executed it.
        placements: conversation seq_id -> replica id (routing outcome).
        metrics: per-replica + aggregate :class:`FleetMetrics`.
        makespan: the latest replica clock (fleet wall time).
    """

    replica_reports: dict[int, RuntimeReport] = field(default_factory=dict)
    owners: dict[int, int] = field(default_factory=dict)
    placements: dict[int, int] = field(default_factory=dict)
    metrics: FleetMetrics = field(default_factory=FleetMetrics)
    makespan: float = 0.0

    @property
    def records(self) -> dict[int, RequestRecord]:
        """Every request record across the fleet (ids globally unique)."""
        merged: dict[int, RequestRecord] = {}
        for report in self.replica_reports.values():
            merged.update(report.records)
        return merged

    def generated(self, request_id: int) -> list[int]:
        return list(self.records[request_id].generated)

    @property
    def completed(self) -> dict[int, RequestRecord]:
        """FINISHED records — the serving-exactness population."""
        return {
            rid: rec
            for rid, rec in self.records.items()
            if rec.state is RequestState.FINISHED
        }

    @property
    def generated_tokens(self) -> int:
        return sum(len(r.generated) for r in self.records.values())

    def tokens_per_second(self) -> float:
        """Fleet-decoded tokens per simulated second of fleet time."""
        return self.generated_tokens / self.makespan if self.makespan > 0 else 0.0

    @property
    def prefill_rounds(self) -> int:
        return sum(r.prefill_rounds for r in self.replica_reports.values())

    @property
    def decode_rounds(self) -> int:
        return sum(r.decode_rounds for r in self.replica_reports.values())

    def statuses(self) -> dict[str, int]:
        """Terminal-status histogram across every replica."""
        counts: dict[str, int] = {}
        for rec in self.records.values():
            key = rec.status or "running"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def goodput(self) -> float:
        """Fleet-completed requests per simulated second of fleet time."""
        return len(self.completed) / self.makespan if self.makespan > 0 else 0.0


class ReplicaFleet:
    """N runtimes behind a routing policy, with drain/join elasticity.

    Args:
        runtimes: the replica runtimes, assigned ids 0..N-1 in order.
            Disaggregated and colocated replicas mix freely — a replica
            is opaque to the router beyond its scheduler-facing views.
        router: routing policy for *new* conversations (default: a fresh
            :class:`repro.cluster.router.PrefixAffinityRouter`).
        tracer: optional :class:`repro.obs.trace.Tracer` receiving one
            ``route`` instant per placement decision (policy, stickiness,
            chosen replica, and — for score-based policies — the
            candidate scores). Replica-internal events are emitted by
            each runtime's own tracer, which the factory should scope
            with ``tracer.scoped(replica=i)`` so fleet traces stay
            attributable per replica.
    """

    def __init__(
        self,
        runtimes: list[ContinuousBatchingRuntime],
        *,
        router: Router | None = None,
        tracer=None,
    ):
        if not runtimes:
            raise ValueError("a fleet needs at least one runtime")
        self.router = router if router is not None else PrefixAffinityRouter()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._replicas: dict[int, Replica] = {
            i: Replica(i, rt) for i, rt in enumerate(runtimes)
        }
        self._next_replica_id = len(runtimes)
        self._next_rid = 0
        self._sticky: dict[int, int] = {}  # seq_id -> replica id
        self._owners: dict[int, int] = {}  # request id -> replica id

    @classmethod
    def build(
        cls, make_runtime, n: int, *, router: Router | None = None, tracer=None
    ) -> "ReplicaFleet":
        """Construct a fleet of ``n`` replicas from a factory.

        ``make_runtime(replica_id)`` must return a *fresh* runtime per
        call — replicas share model weights (cheap, read-only) but never
        engines, clocks, policies, or metrics.
        """
        if n < 1:
            raise ValueError(f"replica count must be >= 1, got {n}")
        return cls([make_runtime(i) for i in range(n)], router=router, tracer=tracer)

    # ------------------------------------------------------------------ #
    # topology
    # ------------------------------------------------------------------ #

    @property
    def replicas(self) -> list[Replica]:
        """Replicas in id order."""
        return [self._replicas[i] for i in sorted(self._replicas)]

    def replica(self, replica_id: int) -> Replica:
        if replica_id not in self._replicas:
            raise KeyError(f"unknown replica {replica_id}")
        return self._replicas[replica_id]

    def add_replica(self, runtime: ContinuousBatchingRuntime) -> int:
        """Join a fresh runtime into the fleet; returns its replica id."""
        rid = self._next_replica_id
        self._next_replica_id += 1
        self._replicas[rid] = Replica(rid, runtime)
        return rid

    def drain(self, replica_id: int) -> None:
        """Stop routing *new* conversations to a replica.

        Resident conversations keep running to completion there
        (stickiness overrides drain — their KV cannot move), so a drain
        followed by :meth:`run` leaves the replica empty and auditable.
        """
        self.replica(replica_id).draining = True

    def join(self, replica_id: int) -> None:
        """Readmit a drained replica to routing."""
        self.replica(replica_id).draining = False

    # ------------------------------------------------------------------ #
    # submission / routing
    # ------------------------------------------------------------------ #

    def submit(self, request: TurnRequest) -> int:
        """Route and enqueue one turn; returns its fleet request id.

        First turns of a conversation are placed by the router over the
        non-draining replicas (in id order); follow-up turns stick to
        the conversation's replica. Ids are fleet-assigned and globally
        unique (an explicit non-negative id is honoured, like
        :meth:`ContinuousBatchingRuntime.submit`).
        """
        if request.request_id < 0:
            request.request_id = self._next_rid
        if request.request_id in self._owners:
            raise ValueError(f"request {request.request_id} already submitted")
        self._next_rid = max(self._next_rid, request.request_id) + 1

        seq_id = request.seq_id
        if seq_id in self._sticky:
            replica = self._replicas[self._sticky[seq_id]]
            if self.tracer.enabled:
                self.tracer.instant(
                    "route",
                    request.arrival,
                    request_id=request.request_id,
                    seq_id=seq_id,
                    replica=replica.id,
                    policy=self.router.name,
                    sticky=True,
                )
        else:
            eligible = [r for r in self.replicas if not r.draining]
            if not eligible:
                raise RuntimeError(
                    "every replica is draining: no placement target for a "
                    "new conversation"
                )
            tokens = np.asarray(request.prompt, dtype=np.int64)
            replica = self.router.place(tokens, eligible)
            if self.tracer.enabled:
                # scores are read *before* placed() updates the shadow
                # index, so they are the ones place() actually compared
                scores = {
                    str(rid): score
                    for rid, score in self.router.scores(tokens, eligible).items()
                }
                self.tracer.instant(
                    "route",
                    request.arrival,
                    request_id=request.request_id,
                    seq_id=seq_id,
                    replica=replica.id,
                    policy=self.router.name,
                    sticky=False,
                    **({"scores": scores} if scores else {}),
                )
            self.router.placed(replica, tokens)
            self._sticky[seq_id] = replica.id

        self._owners[request.request_id] = replica.id
        return replica.runtime.submit(request)

    def submit_script(
        self,
        script: ConversationScript,
        *,
        arrival: float = 0.0,
        think_time: float = 0.0,
    ) -> list[int]:
        """Enqueue a scripted conversation; returns its fleet request ids.

        Mirrors :meth:`ContinuousBatchingRuntime.submit_script` exactly
        (turn ``i`` arrives no earlier than ``arrival + i*think_time``),
        which is what lets :func:`repro.workloads.replay
        .submit_scripts_to_runtime` duck-type over runtimes and fleets.
        """
        if think_time < 0:
            raise ValueError("think_time must be >= 0")
        rids = []
        n = script.turns
        for i, (prompt, budget) in enumerate(
            zip(script.prompts, script.response_budgets)
        ):
            rids.append(
                self.submit(
                    TurnRequest(
                        request_id=-1,
                        seq_id=script.seq_id,
                        prompt=prompt,
                        max_new_tokens=int(budget),
                        arrival=arrival + i * think_time,
                        last_turn=(i == n - 1),
                    )
                )
            )
        return rids

    def placements(self) -> dict[int, int]:
        """Routing outcome so far: conversation seq_id -> replica id."""
        return dict(self._sticky)

    # ------------------------------------------------------------------ #
    # event loop
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """Fleet time: the latest replica clock."""
        return max((r.now for r in self._replicas.values()), default=0.0)

    def step(self) -> bool:
        """Advance the live replica furthest behind in simulated time by
        one runtime step (ties to the lowest id). Returns ``True`` while
        any replica has unfinished requests."""
        live = [r for r in self._replicas.values() if r.live()]
        if not live:
            return False
        lagging = min(live, key=lambda r: (r.now, r.id))
        lagging.runtime.step()
        return any(r.live() for r in self._replicas.values())

    def run(self, *, max_steps: int | None = None) -> FleetReport:
        """Drive :meth:`step` until every replica drains."""
        steps = 0
        while self.step():
            steps += 1
            if max_steps is not None and steps >= max_steps:
                raise RuntimeError(f"fleet did not drain within {max_steps} steps")
        return self.report()

    # ------------------------------------------------------------------ #
    # reporting / audit
    # ------------------------------------------------------------------ #

    def kv_leak_reports(self) -> dict[int, list[str]]:
        """Per-replica KV audit (engines + swap stores); all-empty = the
        fleet drained leak-free."""
        return {
            rid: self._replicas[rid].runtime.kv_leak_report()
            for rid in sorted(self._replicas)
        }

    def report(self) -> FleetReport:
        metrics = FleetMetrics()
        reports: dict[int, RuntimeReport] = {}
        for rid in sorted(self._replicas):
            runtime = self._replicas[rid].runtime
            reports[rid] = runtime.report()
            metrics.add_replica(rid, runtime.metrics, runtime.now)
        return FleetReport(
            replica_reports=reports,
            owners=dict(self._owners),
            placements=self.placements(),
            metrics=metrics,
            makespan=self.now,
        )
