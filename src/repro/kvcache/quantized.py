"""Quantized KV cache storage (paper §2.2's memory lever).

The paper cites KV-cache quantization (KVQuant, QServe) as the standard
complement to CP for bending the KV memory curve: INT8/FP8 KV halves wire
*and* HBM bytes, which also shifts the pass-KV/pass-Q thresholds (the
``e`` in Equations 1-3). This module provides a drop-in quantized backend
for :class:`repro.kvcache.cache.RankKVCache` semantics:

- per-(token, head) symmetric scaling — finer grain than weight rows
  because KV outliers are token-local;
- transparent dequantization on read, so ring algorithms are unchanged;
- exact byte accounting for the perf model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_QMAX = 127


@dataclass
class QuantizedKV:
    """One quantized KV chunk: int8 codes + per-(token, head) scales."""

    k_codes: np.ndarray  # [n, NKV, DH] int8
    v_codes: np.ndarray
    k_scales: np.ndarray  # [n, NKV]
    v_scales: np.ndarray

    @property
    def tokens(self) -> int:
        return self.k_codes.shape[0]

    @property
    def nbytes(self) -> int:
        """Stored bytes: 1/code + 4/scale."""
        return int(
            self.k_codes.size + self.v_codes.size
            + 4 * (self.k_scales.size + self.v_scales.size)
        )


def quantize_kv(k: np.ndarray, v: np.ndarray) -> QuantizedKV:
    """Quantize ``[n, NKV, DH]`` K/V tensors per (token, head).

    Raises:
        ValueError: on shape mismatch or wrong rank.
    """
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if k.shape != v.shape or k.ndim != 3:
        raise ValueError(f"bad KV shapes k{k.shape} v{v.shape}")

    def _q(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        amax = np.max(np.abs(x), axis=-1)
        scales = amax / _QMAX
        safe = np.where(scales == 0.0, 1.0, scales)
        codes = np.clip(np.rint(x / safe[..., None]), -_QMAX, _QMAX).astype(np.int8)
        codes[scales == 0.0] = 0
        return codes, scales

    k_codes, k_scales = _q(k)
    v_codes, v_scales = _q(v)
    return QuantizedKV(k_codes=k_codes, v_codes=v_codes, k_scales=k_scales, v_scales=v_scales)


def dequantize_kv(q: QuantizedKV) -> tuple[np.ndarray, np.ndarray]:
    """Reconstruct float K/V from a quantized chunk."""
    k = q.k_codes.astype(np.float64) * q.k_scales[..., None]
    v = q.v_codes.astype(np.float64) * q.v_scales[..., None]
    return k, v


def kv_quantization_error(k: np.ndarray, v: np.ndarray) -> tuple[float, float]:
    """Max relative reconstruction error per tensor (diagnostics)."""
    q = quantize_kv(k, v)
    k2, v2 = dequantize_kv(q)
    k_den = max(float(np.abs(k).max()), 1e-12)
    v_den = max(float(np.abs(v).max()), 1e-12)
    return (
        float(np.abs(k2 - k).max()) / k_den,
        float(np.abs(v2 - v).max()) / v_den,
    )


def compression_ratio(q: QuantizedKV, *, element_bytes: float = 2.0) -> float:
    """Bytes saved vs storing the same KV at ``element_bytes``/element."""
    dense = (q.k_codes.size + q.v_codes.size) * element_bytes
    return dense / q.nbytes
