"""Tests for the pass-KV/pass-Q selection heuristics (Eqs. 1-3, 5)."""

import numpy as np
import pytest

from repro.core.heuristics import (
    PAPER_EMPIRICAL_COEFFS,
    HeuristicConfig,
    RingAlgo,
    empirical_score,
    fit_empirical,
    miss_rate,
    select_algo_empirical,
    select_algo_simple,
    select_algo_with_all2all,
)


def llama405b_cp4_config(**overrides) -> HeuristicConfig:
    """Llama3 405B on 4 GTT hosts — the Table 4 configuration."""
    params = dict(
        n_heads=128,
        n_kv_heads=8,
        element_bytes=2.0,
        peak_compute=8 * 540e12,
        bandwidth=220e9,
        world_size=4,
    )
    params.update(overrides)
    return HeuristicConfig(**params)


class TestThresholds:
    def test_equation1_constant(self):
        assert llama405b_cp4_config().kv_message_ratio == pytest.approx(0.125)

    def test_equation2_threshold_scales_with_ranks(self):
        t4 = llama405b_cp4_config().passkv_overlap_threshold
        t8 = llama405b_cp4_config(world_size=8).passkv_overlap_threshold
        assert t8 == pytest.approx(2 * t4)

    def test_equation2_magnitude(self):
        """For 405B on CP4/GTT the overlap threshold is a few thousand
        tokens (the paper validates pass-KV staying hidden at T=12800)."""
        t = llama405b_cp4_config().passkv_overlap_threshold
        assert 1000 < t < 12800

    def test_equation3_threshold(self):
        cfg = llama405b_cp4_config()
        expected = 4 * 2.0 * 8 * 540e12 / (4 * 220e9)
        assert cfg.passq_overlap_threshold == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            llama405b_cp4_config(n_heads=10, n_kv_heads=3)
        with pytest.raises(ValueError):
            llama405b_cp4_config(bandwidth=0)
        with pytest.raises(ValueError):
            llama405b_cp4_config(world_size=0)


class TestMissRate:
    def test_values(self):
        assert miss_rate(10, 90) == pytest.approx(0.1)
        assert miss_rate(5, 0) == 1.0
        assert miss_rate(0, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            miss_rate(-1, 5)


class TestAlgorithm1:
    def test_full_prefill_selects_passkv(self):
        cfg = llama405b_cp4_config()
        assert select_algo_simple(cfg, 128000, 0) is RingAlgo.PASS_KV

    def test_decode_selects_passq(self):
        cfg = llama405b_cp4_config()
        assert select_algo_simple(cfg, 1, 128000) is RingAlgo.PASS_Q

    def test_miss_rate_branch(self):
        """Above 12.5% miss rate pass-KV wins regardless of T (Eq. 1)."""
        cfg = llama405b_cp4_config()
        # tiny T (below Eq. 2 threshold) but high miss rate
        assert select_algo_simple(cfg, 100, 500) is RingAlgo.PASS_KV

    def test_low_miss_small_t_selects_passq(self):
        cfg = llama405b_cp4_config()
        t = 1280
        p = 126720  # 1% miss
        assert t < cfg.passkv_overlap_threshold
        assert select_algo_simple(cfg, t, p) is RingAlgo.PASS_Q

    def test_table4_large_t_branch(self):
        """At 10% miss (T=12800 > Eq. 2 threshold) pass-KV remains chosen
        because SendRecv hides under ATTN — the paper's §4.2.4 validation."""
        cfg = llama405b_cp4_config()
        assert 12800 >= cfg.passkv_overlap_threshold
        assert select_algo_simple(cfg, 12800, 115200) is RingAlgo.PASS_KV


class TestAlgorithm5:
    def test_all2all_penalty_shrinks_passq_region(self):
        """Algorithm 5 only moves choices from pass-Q to pass-KV."""
        cfg = llama405b_cp4_config()
        total = 128000
        for t in range(256, 16001, 256):
            simple = select_algo_simple(cfg, t, total - t)
            refined = select_algo_with_all2all(cfg, t, total - t)
            if simple is RingAlgo.PASS_KV:
                assert refined is RingAlgo.PASS_KV

    def test_boundary_point_flips(self):
        """The paper's 3.25% row: Algorithm 1 says pass-Q, but charging the
        All2All moves the boundary down."""
        cfg = llama405b_cp4_config()
        t, p = 4160, 123840
        assert select_algo_simple(cfg, t, p) is RingAlgo.PASS_Q
        assert select_algo_with_all2all(cfg, t, p) is RingAlgo.PASS_KV

    def test_extreme_hit_rate_still_passq(self):
        cfg = llama405b_cp4_config()
        assert select_algo_with_all2all(cfg, 1280, 126720) is RingAlgo.PASS_Q


class TestEmpiricalModel:
    def test_paper_coefficients_exposed(self):
        assert PAPER_EMPIRICAL_COEFFS == (-1.059, 1.145, 12.112)

    def test_score_monotonic_in_miss_rate(self):
        """At fixed T, increasing miss rate pushes toward pass-KV."""
        scores = [empirical_score(1000, p) for p in (99000, 9000, 0)]
        assert scores == sorted(scores)

    def test_selector_consistency(self):
        t, p = 100, 100000
        expected = RingAlgo.PASS_KV if empirical_score(t, p) > 0 else RingAlgo.PASS_Q
        assert select_algo_empirical(t, p) is expected

    def test_requires_new_tokens(self):
        with pytest.raises(ValueError):
            empirical_score(0, 100)

    def test_fit_recovers_planted_boundary(self):
        """fit_empirical recovers a linear decision boundary from labels."""
        rng = np.random.default_rng(0)
        true = (-1.2, 1.4, 10.0)
        t = rng.integers(64, 200000, size=600).astype(float)
        rate = rng.uniform(0.001, 1.0, size=600)
        p = t / rate - t
        h = true[0] * np.log(t) + true[1] * np.log(rate) + true[2]
        labels = h > 0
        fitted = fit_empirical(t, p, labels)
        h_fit = fitted[0] * np.log(t) + fitted[1] * np.log(rate) + fitted[2]
        agreement = np.mean((h_fit > 0) == labels)
        assert agreement > 0.97

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            fit_empirical(np.array([1.0, 2.0]), np.array([1.0]), np.array([True]))
        with pytest.raises(ValueError):
            fit_empirical(np.array([0.0]), np.array([1.0]), np.array([True]))
