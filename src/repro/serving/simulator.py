"""Discrete-event serving simulator over the calibrated latency model.

Answers system-level questions the per-request model cannot: under a
stream of arrivals, what TTFT/TTIT distributions does a CP deployment
deliver, and how does colocated serving (prefill preempts decode, §4.3's
standalone deployment) compare with a disaggregated pool? This is the
*analytic* face of the architecture the paper closes on — "a serving
system that decouples the parallelization scheme for prefill and decode"
(§4.3, citing DistServe and Mooncake). Its executable counterpart is the
disaggregated :class:`repro.runtime.ContinuousBatchingRuntime`, whose
measured TTFT/TTIT the "Disaggregated runtime" experiment
(:mod:`repro.experiments.disagg_runtime`) puts next to this simulator's
predictions over the same traces.

Scheduling model (deliberately simple and deterministic):

- **Prefill-priority, non-preemptive jobs**: the CP pool runs one prefill
  at a time (prefill is compute-bound and saturates all ranks); queued
  prefills go FIFO. No chunking — the runtime's chunked prefill
  interleaves at finer grain, which is the main place measurement and
  prediction part ways.
- **Decode rounds between prefills**: whenever no prefill is running or
  queued, all active sequences advance one token per round at the batched
  CP decode TTIT. A prefill arrival waits for the current round only.
- **Disaggregated mode**: decode rounds run on a separate TP8 host at
  single-host TTIT and are never preempted by prefills; the KV stream
  tail (``1/n_layers`` of the full stream — layer-wise overlap) is added
  to TTFT (see :mod:`repro.serving.disaggregated`), where the runtime
  instead schedules whole transfers on an explicit serialized wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model.config import ModelConfig
from repro.perf.hardware import HostSpec
from repro.perf.latency import LatencySimulator
from repro.serving.disaggregated import DisaggregatedSimulator


@dataclass(frozen=True)
class Arrival:
    """One incoming request.

    Attributes:
        request_id: unique id.
        time: arrival time (seconds).
        context_tokens: prompt length to prefill.
        output_tokens: decode budget.
    """

    request_id: int
    time: float
    context_tokens: int
    output_tokens: int

    def __post_init__(self) -> None:
        if self.context_tokens < 1 or self.output_tokens < 0:
            raise ValueError(f"bad request {self}")


@dataclass
class Completion:
    """Measured outcome for one request."""

    request_id: int
    arrival: float
    prefill_start: float = 0.0
    first_token: float = 0.0
    finish: float = 0.0
    decoded: int = 0

    @property
    def ttft(self) -> float:
        return self.first_token - self.arrival

    @property
    def queueing(self) -> float:
        return self.prefill_start - self.arrival


@dataclass
class ServingReport:
    """Aggregate simulation output."""

    completions: list[Completion] = field(default_factory=list)
    makespan: float = 0.0
    decode_rounds: int = 0

    def ttfts(self) -> np.ndarray:
        return np.array([c.ttft for c in self.completions])

    def mean_ttft(self) -> float:
        return float(self.ttfts().mean())

    def p99_ttft(self) -> float:
        return float(np.percentile(self.ttfts(), 99))

    def mean_queueing(self) -> float:
        return float(np.mean([c.queueing for c in self.completions]))

    def throughput(self) -> float:
        """Completed requests per second over the makespan."""
        return len(self.completions) / self.makespan if self.makespan > 0 else 0.0


class ClusterServingSimulator:
    """Event-driven simulation of one CP deployment.

    Args:
        config: model architecture.
        host: platform spec.
        n_ranks: CP pool size (hosts).
        disaggregated: route decode to a dedicated TP8 host.
    """

    def __init__(
        self,
        config: ModelConfig,
        host: HostSpec,
        *,
        n_ranks: int,
        disaggregated: bool = False,
    ):
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        self.config = config
        self.host = host
        self.n_ranks = n_ranks
        self.disaggregated = disaggregated
        self.sim = LatencySimulator(config, host)
        self._disagg = DisaggregatedSimulator(config, host)

    # ------------------------------------------------------------------ #

    def _prefill_time(self, context: int) -> float:
        t = self.sim.cp_prefill(context, n_ranks=self.n_ranks).total
        if self.disaggregated:
            t += self._disagg.kv_transfer_time(context) / self.config.n_layers
        return t

    def _decode_round_time(self, contexts: list[int]) -> float:
        batch = len(contexts)
        # the round is paced by the longest context (load-balanced shards
        # make per-rank work proportional to max context in the batch)
        ctx = max(contexts)
        if self.disaggregated or self.n_ranks == 1:
            return self.sim.tp_decode(ctx, batch=batch, n_nodes=1).total
        return self.sim.cp_decode(ctx, batch=batch, n_ranks=self.n_ranks).total

    def simulate(self, arrivals: list[Arrival]) -> ServingReport:
        """Run the event loop over a sorted arrival stream."""
        arrivals = sorted(arrivals, key=lambda a: a.time)
        if not arrivals:
            return ServingReport()
        if self.disaggregated:
            return self._simulate_disaggregated(arrivals)
        return self._simulate_colocated(arrivals)

    def _simulate_colocated(self, arrivals: list[Arrival]) -> ServingReport:
        """One pool: prefills preempt decode rounds (standalone deployment)."""
        pending = list(arrivals)
        active: dict[int, tuple[Completion, Arrival]] = {}
        report = ServingReport()
        now = 0.0

        while pending or active:
            if pending and pending[0].time <= now:
                # colocated semantics: a queued prefill preempts further
                # decode rounds (it only waited for the round in flight)
                req = pending.pop(0)
                comp = Completion(request_id=req.request_id, arrival=req.time)
                comp.prefill_start = now
                now += self._prefill_time(req.context_tokens)
                comp.first_token = now
                if req.output_tokens == 0:
                    comp.finish = now
                    report.completions.append(comp)
                else:
                    active[req.request_id] = (comp, req)
                continue
            if active:
                contexts = [
                    arr.context_tokens + comp.decoded for comp, arr in active.values()
                ]
                now += self._decode_round_time(contexts)
                report.decode_rounds += 1
                done = []
                for rid, (comp, arr) in active.items():
                    comp.decoded += 1
                    if comp.decoded >= arr.output_tokens:
                        comp.finish = now
                        report.completions.append(comp)
                        done.append(rid)
                for rid in done:
                    del active[rid]
                continue
            # idle: jump to the next arrival
            now = max(now, pending[0].time)

        report.makespan = now
        report.completions.sort(key=lambda c: c.request_id)
        return report

    def _simulate_disaggregated(self, arrivals: list[Arrival]) -> ServingReport:
        """Two pools: a CP prefill pipeline feeding a TP8 decode host."""
        report = ServingReport()

        # prefill pool: FIFO, one prefill at a time
        joins: list[tuple[float, Completion, Arrival]] = []
        t_pool = 0.0
        for req in arrivals:
            comp = Completion(request_id=req.request_id, arrival=req.time)
            comp.prefill_start = max(t_pool, req.time)
            t_pool = comp.prefill_start + self._prefill_time(req.context_tokens)
            comp.first_token = t_pool
            if req.output_tokens == 0:
                comp.finish = t_pool
                report.completions.append(comp)
            else:
                joins.append((t_pool, comp, req))

        # decode pool: sequences join as their KV arrives; never preempted
        joins.sort(key=lambda j: j[0])
        active: dict[int, tuple[Completion, Arrival]] = {}
        t_dec = 0.0
        while joins or active:
            if joins and joins[0][0] <= t_dec:
                _, comp, req = joins.pop(0)
                active[req.request_id] = (comp, req)
                continue
            if active:
                contexts = [
                    arr.context_tokens + comp.decoded for comp, arr in active.values()
                ]
                t_dec += self._decode_round_time(contexts)
                report.decode_rounds += 1
                done = []
                for rid, (comp, arr) in active.items():
                    comp.decoded += 1
                    if comp.decoded >= arr.output_tokens:
                        comp.finish = t_dec
                        report.completions.append(comp)
                        done.append(rid)
                for rid in done:
                    del active[rid]
                continue
            t_dec = joins[0][0]

        report.makespan = max(t_pool, t_dec)
        report.completions.sort(key=lambda c: c.request_id)
        return report


def poisson_arrivals(
    rate_per_s: float,
    n_requests: int,
    *,
    context_tokens: int,
    output_tokens: int,
    seed: int = 0,
) -> list[Arrival]:
    """Homogeneous Poisson arrival stream of identical requests."""
    if rate_per_s <= 0:
        raise ValueError(f"rate must be > 0, got {rate_per_s}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_per_s, size=n_requests)
    times = np.cumsum(gaps)
    return [
        Arrival(request_id=i, time=float(times[i]),
                context_tokens=context_tokens, output_tokens=output_tokens)
        for i in range(n_requests)
    ]
