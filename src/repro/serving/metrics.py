"""Serving metrics aggregation (TTFT / TTIT / cache hit rates).

Since the observability layer (PR 10) these aggregates are *re-based* on
:class:`repro.obs.registry.MetricsRegistry`: every scalar counter, pool
label, and latency population is a registered instrument, so a runtime's
whole metric surface exposes as Prometheus text
(:meth:`ServingMetrics.prometheus_text` /
:meth:`FleetMetrics.prometheus_text`, the latter adding a ``replica``
label per series). The public API is unchanged — the attributes below
are now read-only properties over the registry (the ``record_*`` methods
remain the only writers), and list-valued attributes
(``ttft_samples``...) alias the backing histograms' own sample lists, so
existing readers and the trace-reconciliation property see exactly the
values the exposition reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.registry import MetricsRegistry, prometheus_text_multi
from repro.serving.request import TurnRecord

#: Integer event counters: attribute -> (metric name, help).
_INT_COUNTERS = {
    "preemptions": ("repro_preemptions_total", "Full KV evictions under capacity pressure"),
    "evicted_tokens": ("repro_preempt_evicted_kv_tokens_total", "KV tokens dropped by full evictions"),
    "trims": ("repro_trims_total", "Tail-trim preemption remedies applied"),
    "trimmed_kv_tokens": ("repro_trimmed_kv_tokens_total", "KV tokens dropped by tail-trims"),
    "swaps_out": ("repro_swaps_out_total", "Device-to-host KV swap-outs"),
    "swaps_in": ("repro_swaps_in_total", "Host-to-device KV swap-ins"),
    "swapped_out_tokens": ("repro_swapped_out_kv_tokens_total", "KV tokens swapped out to the host store"),
    "swapped_in_tokens": ("repro_swapped_in_kv_tokens_total", "KV tokens swapped back from the host store"),
    "transfers": ("repro_kv_transfers_total", "Landed prefill-to-decode KV transfers"),
    "transferred_kv_tokens": ("repro_transferred_kv_tokens_total", "KV tokens landed over the transfer wire"),
    "transfer_refusals": ("repro_kv_transfer_refusals_total", "Transfers the decode pool's admission refused"),
    "transfers_cancelled": ("repro_kv_transfers_cancelled_total", "In-flight transfers cancelled by eviction/shed"),
    "transfers_refunded": ("repro_kv_transfers_refunded_total", "Cancelled transfers that wasted no wire time"),
    "prefix_hits": ("repro_prefix_hits_total", "Prefix-cache lookups that adopted a cached prefix"),
    "prefix_misses": ("repro_prefix_misses_total", "Prefix-cache lookups that matched nothing"),
    "prefix_reused_tokens": ("repro_prefix_reused_kv_tokens_total", "KV tokens adopted from cached prefixes"),
    "prefix_evictions": ("repro_prefix_evictions_total", "LRU evictions of cached prefix residents"),
    "prefix_evicted_tokens": ("repro_prefix_evicted_kv_tokens_total", "KV tokens dropped by prefix evictions"),
    "transfer_faults": ("repro_transfer_faults_total", "Injected mid-stream KV-transfer failures"),
    "fault_retries": ("repro_fault_retries_total", "Failed transfers rescheduled after backoff"),
    "swap_losses": ("repro_swap_losses_total", "Host-store payloads lost at swap-in time"),
    "swap_lost_tokens": ("repro_swap_lost_kv_tokens_total", "KV tokens in lost swap payloads"),
    "pool_resets": ("repro_pool_resets_total", "Whole-pool KV resets injected"),
    "pool_reset_evicted_tokens": ("repro_pool_reset_evicted_kv_tokens_total", "Resident KV tokens dropped by pool resets"),
    "degraded_fallbacks": ("repro_degraded_fallbacks_total", "Fault recoveries that bottomed out in recompute"),
    "timeouts": ("repro_timeouts_total", "Requests shed for blowing their deadline"),
    "sheds": ("repro_sheds_total", "Requests shed by backpressure or cascade"),
    "completed_requests": ("repro_completed_requests_total", "Requests that reached FINISHED"),
}

#: Simulated-seconds counters (monotonic, float-valued).
_FLOAT_COUNTERS = {
    "swap_stall_s": ("repro_swap_stall_seconds_total", "Pool stall seconds spent on swap DMA"),
    "transfer_stall_s": ("repro_transfer_stall_seconds_total", "Decode idle seconds waiting on the KV wire"),
    "fault_backoff_s": ("repro_fault_backoff_seconds_total", "Retry backoff seconds charged to the wire schedule"),
}

#: Latency populations: attribute holding the raw samples -> metric.
_HISTOGRAMS = {
    "ttft_samples": ("repro_ttft_seconds", "Time to first token per completed request"),
    "ttit_samples": ("repro_ttit_seconds", "Inter-token gaps of streamed responses"),
    "ttft_cold_samples": ("repro_ttft_cold_seconds", "TTFT of prefix-cache-eligible requests that missed"),
    "ttft_warm_samples": ("repro_ttft_warm_seconds", "TTFT of prefix-cache-eligible requests that hit"),
}


class ServingMetrics:
    """Rolling aggregate over completed turns, backed by a registry.

    TTFT/TTIT samples come from the analytic simulator or the serving
    runtime's step clock (seconds); token and cache-hit accounting comes
    from the numeric engine's turn records. Preemption/eviction counters
    are fed by the continuous-batching runtime's capacity-pressure path,
    broken out by remedy: full evictions (``preemptions``), tail-trims
    (``trims``), and CPU swaps (``swaps_out``/``swaps_in`` with the PCIe
    stall seconds they cost the pools).
    Pool busy-time and KV-transfer counters are fed by the (optionally
    disaggregated) runtime's event loop: per-pool utilization is
    ``pool_busy_s[pool] / makespan``, and the transfer-stall counter is
    the decode-pool idle time spent waiting for KV still on the wire.
    Fault counters are fed by the runtime's chaos layer
    (:mod:`repro.runtime.faults`): injected transfer failures (split
    into backoff retries and re-prefill fallbacks), lost swap payloads,
    whole-pool resets, degraded-ladder fallbacks, and the
    deadline/backpressure shedding tallies behind the ``goodput``
    metric (completed requests per simulated host-second).

    Args:
        registry: the :class:`~repro.obs.registry.MetricsRegistry` to
            register instruments on (default: a fresh private one, so
            every instance — one per fleet replica — owns its state).
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.turns: list[TurnRecord] = []
        self._counters = {
            attr: r.counter(name, help)
            for attr, (name, help) in {**_INT_COUNTERS, **_FLOAT_COUNTERS}.items()
        }
        self._histograms = {
            attr: r.histogram(name, help) for attr, (name, help) in _HISTOGRAMS.items()
        }
        self._pool_busy = r.counter(
            "repro_pool_busy_seconds_total", "Engine busy seconds per pool", labels=("pool",)
        )
        self._pool_rounds = r.counter(
            "repro_pool_rounds_total", "Engine rounds executed per pool", labels=("pool",)
        )
        self._peak_kv = r.gauge(
            "repro_kv_peak_utilization", "Peak claimed KV-block fraction per pool", labels=("pool",)
        )

    # ---------------------- registry-backed attributes ------------------- #
    # Scalar counters and sample lists are generated as properties after
    # the class body (one per _INT_COUNTERS/_FLOAT_COUNTERS/_HISTOGRAMS
    # entry); only the pool-labeled dict views need hand-written ones.

    @property
    def pool_busy_s(self) -> dict[str, float]:
        return {labels[0]: v for labels, v in self._pool_busy.items()}

    @property
    def pool_rounds(self) -> dict[str, int]:
        return {labels[0]: int(v) for labels, v in self._pool_rounds.items()}

    @property
    def peak_kv_utilization(self) -> dict[str, float]:
        return {labels[0]: v for labels, v in self._peak_kv.items()}

    def prometheus_text(self) -> str:
        """Prometheus text exposition of every registered instrument."""
        return self.registry.prometheus_text()

    # ------------------------------ writers ------------------------------ #

    def record_turn(self, turn: TurnRecord, *, ttft: float | None = None, ttit: float | None = None) -> None:
        self.turns.append(turn)
        self._counters["completed_requests"].inc()
        if ttft is not None:
            self._histograms["ttft_samples"].observe(ttft)
        if ttit is not None:
            self._histograms["ttit_samples"].observe(ttit)

    def record_ttit(self, ttit: float) -> None:
        """Record one inter-token gap (runtime decode streaming)."""
        self._histograms["ttit_samples"].observe(ttit)

    def record_preemption(self, evicted_tokens: int) -> None:
        """Count one capacity-pressure preemption and the KV it evicted."""
        self._counters["preemptions"].inc()
        self._counters["evicted_tokens"].inc(int(evicted_tokens))

    def record_trim(self, trimmed_tokens: int) -> None:
        """Count one tail-trim remedy and the KV tokens it dropped."""
        self._counters["trims"].inc()
        self._counters["trimmed_kv_tokens"].inc(int(trimmed_tokens))

    def record_swap_out(self, tokens: int, *, stall_s: float = 0.0) -> None:
        """Count one device->host KV swap and the pool stall it cost."""
        if stall_s < 0:
            raise ValueError(f"swap stall must be >= 0, got {stall_s}")
        self._counters["swaps_out"].inc()
        self._counters["swapped_out_tokens"].inc(int(tokens))
        self._counters["swap_stall_s"].inc(float(stall_s))

    def record_swap_in(self, tokens: int, *, stall_s: float = 0.0) -> None:
        """Count one host->device KV swap and the pool stall it cost."""
        if stall_s < 0:
            raise ValueError(f"swap stall must be >= 0, got {stall_s}")
        self._counters["swaps_in"].inc()
        self._counters["swapped_in_tokens"].inc(int(tokens))
        self._counters["swap_stall_s"].inc(float(stall_s))

    def record_round(self, pool: str, busy_s: float) -> None:
        """Account one engine round's busy time against ``pool``."""
        self._pool_busy.inc(float(busy_s), pool=pool)
        self._pool_rounds.inc(1, pool=pool)

    def record_kv_occupancy(self, pool: str, fraction: float) -> None:
        """Sample a pool's claimed KV-block fraction (peak is kept)."""
        self._peak_kv.set_max(float(fraction), pool=pool)

    def record_transfer(self, tokens: int) -> None:
        """Count one landed prefill->decode KV transfer."""
        self._counters["transfers"].inc()
        self._counters["transferred_kv_tokens"].inc(int(tokens))

    def record_transfer_refusal(self) -> None:
        """Count a transfer the decode pool's admission control refused."""
        self._counters["transfer_refusals"].inc()

    def record_transfer_cancel(self, *, refunded: bool = False) -> None:
        """Count a cancelled transfer.

        Args:
            refunded: the cancel wasted no wire time (the payload never
                started streaming, so the channel refunded its whole
                reservation). Refunded cancels are a subset of
                ``transfers_cancelled``, counted once — a cancel is never
                both sunk and refunded.
        """
        self._counters["transfers_cancelled"].inc()
        if refunded:
            self._counters["transfers_refunded"].inc()

    def record_prefix_hit(self, reused_tokens: int) -> None:
        """Count one prefix-cache lookup that adopted a cached prefix."""
        if reused_tokens < 1:
            raise ValueError(f"a prefix hit must reuse >= 1 token, got {reused_tokens}")
        self._counters["prefix_hits"].inc()
        self._counters["prefix_reused_tokens"].inc(int(reused_tokens))

    def record_prefix_miss(self) -> None:
        """Count one prefix-cache lookup that matched nothing."""
        self._counters["prefix_misses"].inc()

    def record_prefix_eviction(self, tokens: int) -> None:
        """Count one LRU eviction of a finished cached prefix resident."""
        self._counters["prefix_evictions"].inc()
        self._counters["prefix_evicted_tokens"].inc(int(tokens))

    def record_ttft_split(self, ttft: float, *, warm: bool) -> None:
        """File a TTFT sample under the warm (prefix hit) or cold bucket.

        Split accounting only — callers still record the sample in the
        overall TTFT population via :meth:`record_turn`.
        """
        key = "ttft_warm_samples" if warm else "ttft_cold_samples"
        self._histograms[key].observe(ttft)

    def record_transfer_fault(self, *, retried: bool, backoff_s: float = 0.0) -> None:
        """Count one injected mid-stream KV-transfer failure.

        Args:
            retried: the degradation ladder rescheduled the payload
                after ``backoff_s`` of capped exponential backoff;
                ``False`` means the retry budget was spent and the
                request fell back to full re-prefill (counted separately
                via :meth:`record_degraded_fallback`).
            backoff_s: retry delay charged to the wire schedule.
        """
        if backoff_s < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff_s}")
        self._counters["transfer_faults"].inc()
        if retried:
            self._counters["fault_retries"].inc()
            self._counters["fault_backoff_s"].inc(float(backoff_s))

    def record_swap_loss(self, tokens: int) -> None:
        """Count one host-store payload lost at swap-in time."""
        self._counters["swap_losses"].inc()
        self._counters["swap_lost_tokens"].inc(int(tokens))

    def record_pool_reset(self, evicted_tokens: int) -> None:
        """Count one whole-pool KV reset and the resident KV it dropped."""
        self._counters["pool_resets"].inc()
        self._counters["pool_reset_evicted_tokens"].inc(int(evicted_tokens))

    def record_degraded_fallback(self) -> None:
        """Count one degradation-ladder bottom-out: a fault recovery that
        ended in recomputation (re-prefill) instead of the cheap path."""
        self._counters["degraded_fallbacks"].inc()

    def record_timeout(self) -> None:
        """Count one request shed for blowing its completion deadline."""
        self._counters["timeouts"].inc()

    def record_shed(self) -> None:
        """Count one request shed by queue-depth backpressure (or
        cascaded from an earlier shed turn of its conversation)."""
        self._counters["sheds"].inc()

    def record_transfer_stall(self, seconds: float) -> None:
        """Account decode-pool idle time spent waiting on the KV stream.

        Raises:
            ValueError: negative stall — a symptom of cancel-refund
                accounting gone wrong (a repacked schedule must never
                place a finish behind the clock that waited on it).
        """
        if seconds < 0:
            raise ValueError(f"transfer stall must be >= 0, got {seconds}")
        self._counters["transfer_stall_s"].inc(float(seconds))

    # ------------------------------- views ------------------------------ #

    @property
    def total_prompt_tokens(self) -> int:
        return sum(t.prompt_tokens for t in self.turns)

    @property
    def total_generated_tokens(self) -> int:
        return sum(t.response_tokens for t in self.turns)

    @property
    def mean_cache_hit_rate(self) -> float:
        """Average of ``P / (T + P)`` over turns (1 - miss rate)."""
        if not self.turns:
            return 0.0
        return float(np.mean([1.0 - t.miss_rate for t in self.turns]))

    def algo_counts(self) -> dict[str, int]:
        """Prefill algorithm selection frequencies."""
        counts: dict[str, int] = {}
        for t in self.turns:
            counts[t.algo] = counts.get(t.algo, 0) + 1
        return counts

    def percentile_ttft(self, q: float) -> float:
        """TTFT percentile in seconds; ``nan`` when no samples exist."""
        if not self.ttft_samples:
            return float("nan")
        return float(np.percentile(self.ttft_samples, q))

    def percentile_ttit(self, q: float) -> float:
        """TTIT percentile in seconds; ``nan`` when no samples exist."""
        if not self.ttit_samples:
            return float("nan")
        return float(np.percentile(self.ttit_samples, q))

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of prefix-cache lookups that reused cached KV.

        Every admission-time index lookup counts — fresh conversations
        and re-matches of evicted follow-up turns alike — so hits and
        misses are recorded symmetrically.
        """
        total = self.prefix_hits + self.prefix_misses
        return self.prefix_hits / total if total else 0.0

    def percentile_ttft_split(self, q: float, *, warm: bool) -> float:
        """Warm- or cold-bucket TTFT percentile; ``nan`` without samples."""
        samples = self.ttft_warm_samples if warm else self.ttft_cold_samples
        if not samples:
            return float("nan")
        return float(np.percentile(samples, q))

    def pool_utilization(self, pool: str, makespan: float) -> float:
        """Busy fraction of ``pool`` over ``makespan`` (nan when unknown)."""
        busy = self.pool_busy_s
        if makespan <= 0 or pool not in busy:
            return float("nan")
        return busy[pool] / makespan

    def goodput(self, makespan: float) -> float:
        """Completed requests per simulated host-second (DistServe's
        serving-quality axis — shed/timed-out requests count against it
        by not counting at all). 0 before any time elapses."""
        if makespan <= 0:
            return 0.0
        return self.completed_requests / makespan

    def summary(self) -> str:
        lines = [
            f"turns: {len(self.turns)}",
            f"prompt tokens: {self.total_prompt_tokens}",
            f"generated tokens: {self.total_generated_tokens}",
            f"mean cache hit rate: {self.mean_cache_hit_rate:.3f}",
            f"algo counts: {self.algo_counts()}",
            f"preemptions: {self.preemptions} ({self.evicted_tokens} KV tokens evicted)",
        ]
        if self.ttft_samples:
            lines.append(
                "TTFT p50/p95/p99: "
                f"{self.percentile_ttft(50):.3f}/{self.percentile_ttft(95):.3f}/"
                f"{self.percentile_ttft(99):.3f}s"
            )
        if self.ttit_samples:
            lines.append(
                "TTIT p50/p95/p99: "
                f"{self.percentile_ttit(50) * 1e3:.2f}/{self.percentile_ttit(95) * 1e3:.2f}/"
                f"{self.percentile_ttit(99) * 1e3:.2f}ms"
            )
        if self.prefix_hits or self.prefix_misses:
            line = (
                f"prefix cache: {self.prefix_hits}/{self.prefix_hits + self.prefix_misses} "
                f"hits ({self.prefix_hit_rate:.1%}), "
                f"{self.prefix_reused_tokens} tokens reused, "
                f"{self.prefix_evictions} cached prefixes evicted"
            )
            if self.ttft_warm_samples and self.ttft_cold_samples:
                line += (
                    f"; TTFT p50 warm/cold: "
                    f"{self.percentile_ttft_split(50, warm=True):.3f}/"
                    f"{self.percentile_ttft_split(50, warm=False):.3f}s"
                )
            lines.append(line)
        if self.trims:
            lines.append(
                f"tail trims: {self.trims} ({self.trimmed_kv_tokens} KV tokens dropped)"
            )
        if self.swaps_out or self.swaps_in:
            lines.append(
                f"KV swaps: {self.swaps_out} out/{self.swaps_in} in "
                f"({self.swapped_out_tokens} tokens out, "
                f"{self.swapped_in_tokens} back, "
                f"{self.swap_stall_s:.3f}s swap stall)"
            )
        if self.transfers or self.transfer_refusals or self.transfers_cancelled:
            lines.append(
                f"KV transfers: {self.transfers} "
                f"({self.transferred_kv_tokens} tokens, "
                f"{self.transfer_refusals} refused, "
                f"{self.transfers_cancelled} cancelled "
                f"({self.transfers_refunded} refunded), "
                f"{self.transfer_stall_s:.3f}s decode stall)"
            )
        if self.transfer_faults or self.swap_losses or self.pool_resets:
            lines.append(
                f"injected faults: {self.transfer_faults} transfer "
                f"({self.fault_retries} retried, {self.fault_backoff_s:.3f}s backoff), "
                f"{self.swap_losses} swap losses ({self.swap_lost_tokens} tokens), "
                f"{self.pool_resets} pool resets "
                f"({self.pool_reset_evicted_tokens} tokens dropped); "
                f"{self.degraded_fallbacks} degraded to recompute"
            )
        if self.timeouts or self.sheds:
            lines.append(
                f"shed: {self.timeouts} timed out, {self.sheds} rejected/cascaded "
                f"({self.completed_requests} requests completed)"
            )
        if self.pool_busy_s:
            busy_s, rounds = self.pool_busy_s, self.pool_rounds
            busy = ", ".join(
                f"{pool}: {busy_s[pool]:.3f}s/{rounds.get(pool, 0)} rounds"
                for pool in sorted(busy_s)
            )
            lines.append(f"pool busy: {busy}")
        if self.peak_kv_utilization:
            peak = ", ".join(
                f"{pool}: {frac:.1%}"
                for pool, frac in sorted(self.peak_kv_utilization.items())
            )
            lines.append(f"peak KV occupancy: {peak}")
        return "\n".join(lines)


def _counter_property(attr: str, cast) -> property:
    def fget(self):
        return cast(self._counters[attr].value())

    fget.__doc__ = f"Registry-backed ``{attr}`` counter (read-only)."
    return property(fget)


def _samples_property(attr: str) -> property:
    def fget(self):
        return self._histograms[attr].samples

    fget.__doc__ = (
        f"Raw ``{attr}`` list (aliases the backing histogram's samples)."
    )
    return property(fget)


for _attr in _INT_COUNTERS:
    setattr(ServingMetrics, _attr, _counter_property(_attr, int))
for _attr in _FLOAT_COUNTERS:
    setattr(ServingMetrics, _attr, _counter_property(_attr, float))
for _attr in _HISTOGRAMS:
    setattr(ServingMetrics, _attr, _samples_property(_attr))
del _attr


@dataclass
class FleetMetrics:
    """Per-replica :class:`ServingMetrics` plus fleet-level rollups.

    The scheduler-facing aggregate the cluster tier reports: each
    replica keeps its own independent ``ServingMetrics`` instance (the
    fleet never shares counter state between replicas), and this class
    only *reads* them — per-replica hit-rate/goodput/utilization for
    routing-quality analysis, concatenated TTFT populations for
    fleet-level percentiles.

    Attributes:
        replicas: replica id -> that replica's own metrics instance.
        makespans: replica id -> that replica's clock at report time
            (denominator for its goodput/utilization).
    """

    replicas: dict[int, "ServingMetrics"] = field(default_factory=dict)
    makespans: dict[int, float] = field(default_factory=dict)

    def add_replica(
        self, replica_id: int, metrics: "ServingMetrics", makespan: float
    ) -> None:
        if replica_id in self.replicas:
            raise ValueError(f"replica {replica_id} already added")
        self.replicas[replica_id] = metrics
        self.makespans[replica_id] = float(makespan)

    # -------------------------- per-replica views ------------------------ #

    def hit_rate(self, replica_id: int) -> float:
        """One replica's prefix-cache hit rate."""
        return self.replicas[replica_id].prefix_hit_rate

    def replica_goodput(self, replica_id: int) -> float:
        """One replica's completed requests per simulated second."""
        return self.replicas[replica_id].goodput(self.makespans[replica_id])

    def utilization(self, replica_id: int) -> dict[str, float]:
        """One replica's per-pool busy fractions over its own makespan."""
        m = self.replicas[replica_id]
        span = self.makespans[replica_id]
        return {pool: m.pool_utilization(pool, span) for pool in sorted(m.pool_busy_s)}

    # --------------------------- fleet rollups --------------------------- #

    @property
    def completed_requests(self) -> int:
        return sum(m.completed_requests for m in self.replicas.values())

    @property
    def prefix_hits(self) -> int:
        return sum(m.prefix_hits for m in self.replicas.values())

    @property
    def prefix_misses(self) -> int:
        return sum(m.prefix_misses for m in self.replicas.values())

    @property
    def prefix_hit_rate(self) -> float:
        """Fleet-wide prefix-cache hit rate (all lookups pooled)."""
        total = self.prefix_hits + self.prefix_misses
        return self.prefix_hits / total if total else 0.0

    def _ttft_population(self, *, warm: bool | None = None) -> list[float]:
        samples: list[float] = []
        for rid in sorted(self.replicas):
            m = self.replicas[rid]
            if warm is None:
                samples.extend(m.ttft_samples)
            elif warm:
                samples.extend(m.ttft_warm_samples)
            else:
                samples.extend(m.ttft_cold_samples)
        return samples

    def percentile_ttft(self, q: float) -> float:
        """Fleet TTFT percentile over every replica's samples; ``nan``
        when no replica has any."""
        samples = self._ttft_population()
        if not samples:
            return float("nan")
        return float(np.percentile(samples, q))

    def percentile_ttft_split(self, q: float, *, warm: bool) -> float:
        """Fleet warm/cold TTFT percentile; ``nan`` without samples."""
        samples = self._ttft_population(warm=warm)
        if not samples:
            return float("nan")
        return float(np.percentile(samples, q))

    def fleet_goodput(self, makespan: float) -> float:
        """Fleet-completed requests per simulated second of fleet time
        (``makespan`` should be the latest replica clock)."""
        if makespan <= 0:
            return 0.0
        return self.completed_requests / makespan

    def prometheus_text(self) -> str:
        """Merged Prometheus exposition over every replica's registry,
        each sample line labeled ``replica="<id>"``."""
        return prometheus_text_multi(
            {rid: m.registry for rid, m in self.replicas.items()}
        )

    def summary(self) -> str:
        lines = [f"replicas: {len(self.replicas)}"]
        for rid in sorted(self.replicas):
            m = self.replicas[rid]
            span = self.makespans[rid]
            util = self.utilization(rid)
            util_s = (
                ", ".join(f"{pool}: {frac:.1%}" for pool, frac in util.items())
                or "idle"
            )
            lines.append(
                f"  replica {rid}: {m.completed_requests} completed, "
                f"goodput {self.replica_goodput(rid):.3f}/s, "
                f"hit rate {m.prefix_hit_rate:.1%}, "
                f"makespan {span:.3f}s, util {util_s}"
            )
        if self.prefix_hits or self.prefix_misses:
            lines.append(
                f"fleet prefix cache: {self.prefix_hits}/"
                f"{self.prefix_hits + self.prefix_misses} hits "
                f"({self.prefix_hit_rate:.1%})"
            )
        samples = self._ttft_population()
        if samples:
            line = (
                f"fleet TTFT p50/p95: "
                f"{self.percentile_ttft(50):.3f}/{self.percentile_ttft(95):.3f}s"
            )
            if self._ttft_population(warm=True) and self._ttft_population(warm=False):
                line += (
                    f"; p50 warm/cold: "
                    f"{self.percentile_ttft_split(50, warm=True):.3f}/"
                    f"{self.percentile_ttft_split(50, warm=False):.3f}s"
                )
            lines.append(line)
        return "\n".join(lines)
