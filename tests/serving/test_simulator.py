"""Tests for the discrete-event serving simulator."""

import pytest

from repro.model.config import llama3_405b_config
from repro.perf.hardware import gtt_host
from repro.serving.simulator import Arrival, ClusterServingSimulator, poisson_arrivals


@pytest.fixture(scope="module")
def colocated():
    return ClusterServingSimulator(llama3_405b_config(), gtt_host(), n_ranks=4)


@pytest.fixture(scope="module")
def disaggregated():
    return ClusterServingSimulator(
        llama3_405b_config(), gtt_host(), n_ranks=4, disaggregated=True
    )


def burst(n, context=32768, output=8, gap=0.0):
    return [
        Arrival(request_id=i, time=i * gap, context_tokens=context, output_tokens=output)
        for i in range(n)
    ]


class TestColocated:
    def test_single_request_ttft_matches_model(self, colocated):
        report = colocated.simulate(burst(1, output=0))
        expected = colocated.sim.cp_prefill(32768, n_ranks=4).total
        assert report.completions[0].ttft == pytest.approx(expected)

    def test_fifo_queueing(self, colocated):
        report = colocated.simulate(burst(3, output=0))
        ttfts = [c.ttft for c in report.completions]
        # back-to-back arrivals queue: TTFT grows ~linearly in position
        assert ttfts[0] < ttfts[1] < ttfts[2]
        assert ttfts[2] == pytest.approx(3 * ttfts[0], rel=0.01)

    def test_decode_completes_all_tokens(self, colocated):
        report = colocated.simulate(burst(2, output=5))
        for c in report.completions:
            assert c.decoded == 5
            assert c.finish > c.first_token

    def test_prefill_preempts_decode(self, colocated):
        """A later arrival's prefill runs before earlier decodes finish."""
        arrivals = [
            Arrival(request_id=0, time=0.0, context_tokens=32768, output_tokens=100),
            Arrival(request_id=1, time=0.1, context_tokens=32768, output_tokens=0),
        ]
        report = colocated.simulate(arrivals)
        first = next(c for c in report.completions if c.request_id == 0)
        second = next(c for c in report.completions if c.request_id == 1)
        # request 1's prefill completed before request 0's 100-token decode
        assert second.first_token < first.finish

    def test_idle_gap_jumps(self, colocated):
        arrivals = [
            Arrival(request_id=0, time=0.0, context_tokens=8192, output_tokens=0),
            Arrival(request_id=1, time=1000.0, context_tokens=8192, output_tokens=0),
        ]
        report = colocated.simulate(arrivals)
        second = next(c for c in report.completions if c.request_id == 1)
        assert second.prefill_start == pytest.approx(1000.0)
        assert second.queueing == pytest.approx(0.0)

    def test_empty(self, colocated):
        report = colocated.simulate([])
        assert report.completions == []


class TestDisaggregated:
    def test_decode_not_preempted(self, colocated, disaggregated):
        """Under a prefill-heavy stream, disaggregated per-token latency
        stays at TP8 TTIT while colocated stalls."""
        arrivals = burst(6, context=65536, output=16, gap=2.0)
        colo = colocated.simulate(arrivals)
        disagg = disaggregated.simulate(arrivals)

        def mean_per_token(report):
            vals = [
                (c.finish - c.first_token) / c.decoded for c in report.completions
            ]
            return sum(vals) / len(vals)

        assert mean_per_token(disagg) < 0.5 * mean_per_token(colo)

    def test_transfer_tail_in_ttft(self, colocated, disaggregated):
        colo = colocated.simulate(burst(1, output=0))
        disagg = disaggregated.simulate(burst(1, output=0))
        assert disagg.completions[0].ttft > colo.completions[0].ttft

    def test_all_requests_complete(self, disaggregated):
        report = disaggregated.simulate(burst(4, output=3, gap=1.0))
        assert len(report.completions) == 4
        assert all(c.decoded == 3 for c in report.completions)


class TestPoissonArrivals:
    def test_deterministic(self):
        a = poisson_arrivals(0.5, 10, context_tokens=100, output_tokens=1, seed=3)
        b = poisson_arrivals(0.5, 10, context_tokens=100, output_tokens=1, seed=3)
        assert [x.time for x in a] == [x.time for x in b]

    def test_sorted_and_positive(self):
        arrivals = poisson_arrivals(2.0, 50, context_tokens=10, output_tokens=0)
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert times[0] > 0

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 5, context_tokens=10, output_tokens=0)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            Arrival(request_id=0, time=0.0, context_tokens=0, output_tokens=1)
