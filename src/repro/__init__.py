"""repro: Context Parallelism for Scalable Million-Token Inference.

A from-scratch Python reproduction of the MLSys 2025 paper (Yang et al.,
Meta; arXiv:2411.01783): lossless exact ring-attention variants (pass-KV
and pass-Q) for long-context LLM inference, with load-balanced sharding,
persistent sharded KV cache across multi-turn prefill and decode, adaptive
algorithm-selection heuristics, and an analytic performance model that
regenerates every table and figure of the paper's evaluation.

Quickstart::

    import numpy as np
    from repro import ContextParallelEngine, LlamaModel, tiny_config

    model = LlamaModel(tiny_config(), seed=0)
    engine = ContextParallelEngine(model, world_size=4)
    out = engine.prefill({0: np.arange(32) % model.config.vocab_size})
    step = engine.decode({0: 7})

See ``examples/`` for multi-turn serving and million-token scaling studies,
and ``benchmarks/`` for the per-table/figure reproduction harness.
"""

from repro.core.engine import ContextParallelEngine, DecodeOutput, PrefillOutput
from repro.core.heuristics import (
    HeuristicConfig,
    RingAlgo,
    select_algo_empirical,
    select_algo_simple,
    select_algo_with_all2all,
)
from repro.core.merge import merge_attention, merge_partials
from repro.core.planner import PrefillPlanner, SelectorKind
from repro.core.ring_decode import DecodeBatch, ring_passq_decode, round_robin_assignment
from repro.core.ring_passkv import ring_passkv_prefill
from repro.core.ring_passq import ring_passq_prefill
from repro.core.sharding import (
    SequenceSpec,
    ShardedKV,
    ShardedQueries,
    load_balanced_chunks,
    shard_positions,
    shard_sequences,
)
from repro.distributed.process_group import SimProcessGroup
from repro.distributed.topology import gti_topology, gtt_topology
from repro.model.config import (
    ModelConfig,
    llama3_405b_config,
    llama3_70b_config,
    llama3_8b_config,
    tiny_config,
)
from repro.model.llama import LlamaModel
from repro.perf.hardware import gti_host, gtt_host
from repro.perf.latency import LatencySimulator
from repro.runtime import (
    ContinuousBatchingRuntime,
    RequestState,
    RuntimeReport,
    SimulatedStepClock,
    TurnRequest,
    UnitStepClock,
)
from repro.serving.disaggregated import DisaggregatedSimulator
from repro.serving.scheduler import ChunkedPrefillPolicy
from repro.serving.session import ChatSession
from repro.serving.simulator import ClusterServingSimulator, poisson_arrivals
from repro.testing import assert_lossless_conversation, assert_lossless_prefill
from repro.version import __version__

__all__ = [
    "ChatSession",
    "ChunkedPrefillPolicy",
    "ClusterServingSimulator",
    "ContextParallelEngine",
    "ContinuousBatchingRuntime",
    "DisaggregatedSimulator",
    "RequestState",
    "RuntimeReport",
    "SimulatedStepClock",
    "TurnRequest",
    "UnitStepClock",
    "assert_lossless_conversation",
    "assert_lossless_prefill",
    "poisson_arrivals",
    "DecodeBatch",
    "DecodeOutput",
    "HeuristicConfig",
    "LatencySimulator",
    "LlamaModel",
    "ModelConfig",
    "PrefillOutput",
    "PrefillPlanner",
    "RingAlgo",
    "SelectorKind",
    "SequenceSpec",
    "ShardedKV",
    "ShardedQueries",
    "SimProcessGroup",
    "__version__",
    "gti_host",
    "gti_topology",
    "gtt_host",
    "gtt_topology",
    "llama3_405b_config",
    "llama3_70b_config",
    "llama3_8b_config",
    "load_balanced_chunks",
    "merge_attention",
    "merge_partials",
    "ring_passkv_prefill",
    "ring_passq_decode",
    "ring_passq_prefill",
    "round_robin_assignment",
    "select_algo_empirical",
    "select_algo_simple",
    "select_algo_with_all2all",
    "shard_positions",
    "shard_sequences",
    "tiny_config",
]
