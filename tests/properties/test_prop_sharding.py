"""Property-based tests: load-balanced sharding invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sharding import (
    SequenceSpec,
    causal_flops_per_rank,
    load_balanced_chunks,
    shard_positions,
    shard_sequences,
)

SETTINGS = dict(max_examples=80, deadline=None)


class TestChunkProperties:
    @given(st.integers(0, 5000), st.integers(1, 16))
    @settings(**SETTINGS)
    def test_chunks_partition(self, length, world):
        chunks = load_balanced_chunks(length, world)
        assert len(chunks) == 2 * world
        assert chunks[0][0] == 0
        assert chunks[-1][1] == length
        for (_, b), (c, _) in zip(chunks, chunks[1:]):
            assert b == c

    @given(st.integers(0, 5000), st.integers(1, 16))
    @settings(**SETTINGS)
    def test_chunk_sizes_differ_by_at_most_one(self, length, world):
        sizes = [b - a for a, b in load_balanced_chunks(length, world)]
        assert max(sizes) - min(sizes) <= 1


class TestShardProperties:
    @given(st.integers(1, 2000), st.integers(1, 12), st.integers(0, 10000))
    @settings(**SETTINGS)
    def test_positions_partition_range(self, length, world, offset):
        shards = shard_positions(length, world, offset=offset)
        merged = np.sort(np.concatenate(shards))
        np.testing.assert_array_equal(merged, np.arange(offset, offset + length))

    @given(st.integers(1, 2000), st.integers(1, 12))
    @settings(**SETTINGS)
    def test_token_balance(self, length, world):
        """Per-rank token counts differ by at most 2 (one per chunk)."""
        sizes = [s.shape[0] for s in shard_positions(length, world)]
        assert max(sizes) - min(sizes) <= 2

    @given(st.integers(32, 4000), st.integers(2, 8))
    @settings(**SETTINGS)
    def test_causal_work_balance(self, length, world):
        """Attention-FLOP share per rank stays within ~15% of ideal for
        non-degenerate lengths (exact at multiples of 2N)."""
        work = causal_flops_per_rank(length, world)
        ideal = work.sum() / world
        assert np.all(work <= ideal * 1.3 + length)
        if length % (2 * world) == 0:
            np.testing.assert_allclose(work, ideal, rtol=1e-12)


class TestVarseqProperties:
    @given(
        st.lists(st.tuples(st.integers(1, 200), st.integers(0, 300)), min_size=1, max_size=6),
        st.integers(1, 8),
    )
    @settings(**SETTINGS)
    def test_fused_batch_partitions_each_sequence(self, sizes, world):
        specs = [
            SequenceSpec(i, new, cached) for i, (new, cached) in enumerate(sizes)
        ]
        shards = shard_sequences(specs, world)
        for spec in specs:
            got = []
            for pos, sid in shards:
                got.extend(int(p) for p, s in zip(pos, sid) if s == spec.seq_id)
            expected = list(range(spec.cached_tokens, spec.cached_tokens + spec.new_tokens))
            assert sorted(got) == expected

    @given(
        st.lists(st.integers(1, 100), min_size=1, max_size=5),
        st.integers(1, 6),
    )
    @settings(**SETTINGS)
    def test_batch_order_preserved_within_rank(self, sizes, world):
        """Within a rank, sequence blocks appear in batch order (fused
        layout, Figure 1)."""
        specs = [SequenceSpec(i, n) for i, n in enumerate(sizes)]
        shards = shard_sequences(specs, world)
        for _, sid in shards:
            non_decreasing_blocks = all(
                sid[i] <= sid[i + 1] for i in range(len(sid) - 1)
            )
            assert non_decreasing_blocks
