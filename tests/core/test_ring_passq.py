"""Tests for ring pass-Q prefill (Algorithm 3): lossless exactness."""

import numpy as np
import pytest

from repro.attention.reference import reference_attention_with_lse
from repro.core.ring_passkv import ring_passkv_prefill
from repro.core.ring_passq import ring_passq_prefill
from repro.core.sharding import SequenceSpec, ShardedKV, ShardedQueries, shard_sequences
from repro.distributed.process_group import SimProcessGroup

from helpers import make_qkv, shard_qkv_full_prefill, shard_varseq_full_prefill


class TestFullPrefill:
    @pytest.mark.parametrize("world", [1, 2, 3, 5])
    def test_matches_reference(self, rng, world):
        t = 37
        q, k, v = make_qkv(rng, t, t)
        ref_out, ref_lse = reference_attention_with_lse(q, k, v)
        queries, kvs = shard_qkv_full_prefill(q, k, v, world)
        group = SimProcessGroup(world)
        results = ring_passq_prefill(group, queries, kvs)
        for res, qs in zip(results, queries):
            np.testing.assert_allclose(res.out, ref_out[qs.positions], atol=1e-10)
            np.testing.assert_allclose(res.lse, ref_lse[qs.positions], atol=1e-10)

    def test_agrees_with_passkv(self, rng):
        """The two lossless variants must agree with each other exactly."""
        world = 4
        q, k, v = make_qkv(rng, 26, 26)
        queries, kvs = shard_qkv_full_prefill(q, k, v, world)
        res_q = ring_passq_prefill(SimProcessGroup(world), queries, kvs)
        res_kv = ring_passkv_prefill(SimProcessGroup(world), queries, kvs)
        for a, b in zip(res_q, res_kv):
            np.testing.assert_allclose(a.out, b.out, atol=1e-10)
            np.testing.assert_allclose(a.lse, b.lse, atol=1e-10)

    def test_uses_all2all(self, rng):
        world = 3
        q, k, v = make_qkv(rng, 12, 12)
        queries, kvs = shard_qkv_full_prefill(q, k, v, world)
        group = SimProcessGroup(world)
        ring_passq_prefill(group, queries, kvs)
        assert group.tracer.count("sendrecv") == world - 1
        assert group.tracer.count("all2all") == 1


class TestPartialPrefill:
    def test_high_cache_hit_rate(self, rng):
        """pass-Q's home regime: tiny T against a large resident P."""
        world = 4
        p_len, t_len = 60, 4
        total = p_len + t_len
        q_new, k_all, v_all = make_qkv(rng, t_len, total)
        ref_out, _ = reference_attention_with_lse(
            q_new, k_all, v_all, q_pos=np.arange(p_len, total), k_pos=np.arange(total)
        )
        shards = shard_sequences([SequenceSpec(0, t_len, p_len)], world)
        cached_splits = np.array_split(np.arange(p_len), world)
        queries, kvs = [], []
        for (pos, sid), cached_pos in zip(shards, cached_splits):
            queries.append(
                ShardedQueries(q=q_new[pos - p_len], positions=pos, seq_ids=sid)
            )
            all_pos = np.concatenate([cached_pos, pos])
            kvs.append(
                ShardedKV(
                    k=k_all[all_pos], v=v_all[all_pos], positions=all_pos,
                    seq_ids=np.zeros(all_pos.shape[0], dtype=np.int64),
                )
            )
        group = SimProcessGroup(world)
        results = ring_passq_prefill(group, queries, kvs)
        for res, qs in zip(results, queries):
            np.testing.assert_allclose(res.out, ref_out[qs.positions - p_len], atol=1e-10)

    def test_query_padding_trimmed(self, rng):
        """Uneven query shards (T not divisible by N) round-trip exactly."""
        world = 4
        t = 10  # 10 tokens over 4 ranks: shards of 3,3,2,2
        q, k, v = make_qkv(rng, t, t)
        ref_out, _ = reference_attention_with_lse(q, k, v)
        queries, kvs = shard_qkv_full_prefill(q, k, v, world)
        lengths = [len(qs) for qs in queries]
        assert max(lengths) != min(lengths)  # padding actually exercised
        results = ring_passq_prefill(SimProcessGroup(world), queries, kvs)
        for res, qs in zip(results, queries):
            assert res.out.shape[0] == len(qs)
            np.testing.assert_allclose(res.out, ref_out[qs.positions], atol=1e-10)

    def test_varseq(self, rng):
        world = 2
        per_seq = {0: make_qkv(rng, 11, 11), 1: make_qkv(rng, 19, 19)}
        queries, kvs = shard_varseq_full_prefill(per_seq, world)
        results = ring_passq_prefill(SimProcessGroup(world), queries, kvs)
        refs = {sid: reference_attention_with_lse(*qkv) for sid, qkv in per_seq.items()}
        for res, qs in zip(results, queries):
            for i, (p, s) in enumerate(zip(qs.positions, qs.seq_ids)):
                np.testing.assert_allclose(res.out[i], refs[int(s)][0][int(p)], atol=1e-10)


class TestValidation:
    def test_world_size_mismatch(self, rng):
        q, k, v = make_qkv(rng, 8, 8)
        queries, kvs = shard_qkv_full_prefill(q, k, v, 2)
        with pytest.raises(ValueError):
            ring_passq_prefill(SimProcessGroup(4), queries, kvs)
