"""Tests for the disaggregated prefill/decode runtime pools.

Covers the pool-aware lifecycle (``PREFILL -> KV_TRANSFER -> DECODE``),
conversation residence in the decode pool, the KV-transfer edge cases the
serving design must survive (zero-decode turns, eviction mid-stream,
decode-pool admission refusing a transfer), per-pool capacity pressure,
and the per-pool/transfer metrics. The full exactness property over
random traces and pool splits lives in
``tests/properties/test_prop_runtime.py``.
"""

import numpy as np
import pytest

from repro.core.engine import ContextParallelEngine
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel
from repro.runtime import (
    ContinuousBatchingRuntime,
    RequestState,
    TurnRequest,
    UnitStepClock,
)
from repro.serving.scheduler import ChunkedPrefillPolicy
from repro.serving.session import ChatSession
from repro.workloads.generator import WorkloadGenerator

MODEL = LlamaModel(tiny_config(), seed=0)
VOCAB = MODEL.config.vocab_size


def make_runtime(
    *,
    world_p=2,
    world_d=1,
    cap_p=None,
    cap_d=None,
    chunk=16,
    round_budget=32,
    **kw,
):
    engine = ContextParallelEngine(MODEL, world_size=world_p, capacity_tokens=cap_p)
    decode_engine = ContextParallelEngine(MODEL, world_size=world_d, capacity_tokens=cap_d)
    return ContinuousBatchingRuntime(
        engine,
        decode_engine=decode_engine,
        policy=ChunkedPrefillPolicy(
            chunk_tokens=chunk, max_tokens_per_round=round_budget, max_seqs_per_round=4
        ),
        **kw,
    )


def prompt(n, seed=0):
    return (np.arange(n) * 7 + seed) % VOCAB


def sequential_tokens(prompt_ids, budget, *, world=2):
    engine = ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=world)
    return list(ChatSession(engine, 0).send(prompt_ids, max_new_tokens=budget).generated)


class TestLifecycle:
    def test_single_request_exact_across_pools(self):
        rt = make_runtime()
        rid = rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(40), max_new_tokens=6))
        report = rt.run(max_steps=10_000)
        rec = report.records[rid]
        assert rec.state is RequestState.FINISHED
        assert report.generated(rid) == sequential_tokens(prompt(40), 6)
        assert report.metrics.transfers == 1
        assert report.metrics.transferred_kv_tokens == 40

    def test_kv_moves_from_prefill_to_decode_pool(self):
        rt = make_runtime()
        rt.submit(
            TurnRequest(
                request_id=-1, seq_id=3, prompt=prompt(24), max_new_tokens=4, last_turn=False
            )
        )
        rt.run(max_steps=10_000)
        # the conversation resides in the decode pool; the prefill pool
        # released its copy at landing
        assert rt.engine.context_length(3) == 0
        assert rt.decode_engine.context_length(3) == 24 + 4

    def test_transfer_state_visible_and_first_token_precedes_landing(self):
        rt = make_runtime(clock=UnitStepClock(transfer_cost=7.0))
        rid = rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(16), max_new_tokens=2))
        saw_transfer = False
        while rt.step():
            rec = rt.report().records[rid]
            if rec.state is RequestState.KV_TRANSFER:
                saw_transfer = True
                assert rec.first_token_at is not None  # streamed from prefill logits
        assert saw_transfer
        rec = rt.report().records[rid]
        # gap between first and second token carries the transfer wait
        gaps = rec.ttit_samples()
        assert gaps and gaps[0] >= 7.0

    def test_multi_turn_delta_transfers(self):
        """Follow-up turns ship only the positions the decode pool lacks."""
        gen = WorkloadGenerator(VOCAB, seed=9)
        script = gen.conversation(0, turns=3, first_prompt=30)
        rt = make_runtime(world_p=2, world_d=2)
        rids = rt.submit_script(script, think_time=3.0)
        report = rt.run(max_steps=20_000)

        engine = ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=2)
        session = ChatSession(engine, 0)
        for rid, p, b in zip(rids, script.prompts, script.response_budgets):
            assert report.generated(rid) == list(session.send(p, max_new_tokens=b).generated)
        # every turn transferred its prompt exactly once; decode tokens
        # were committed in-place by the decode pool (never re-shipped)
        assert report.metrics.transfers == script.turns
        assert report.metrics.transferred_kv_tokens == script.total_prompt_tokens
        # causality across the pool clocks: a follow-up turn never starts
        # (or streams) before its predecessor's decode-pool finish
        recs = [report.records[rid] for rid in rids]
        for prev, nxt in zip(recs, recs[1:]):
            assert nxt.admitted_at >= prev.finished_at
            if nxt.first_token_at is not None:
                assert nxt.first_token_at > prev.finished_at

    def test_late_arrival_does_not_delay_followup_turns(self):
        """An idle prefill clock must not jump past running decodes to a
        far-future arrival: a follow-up turn created by those decodes
        prefills as soon as its predecessor finishes."""
        rt = make_runtime()
        rt.submit(
            TurnRequest(request_id=-1, seq_id=0, prompt=prompt(16), max_new_tokens=4,
                        last_turn=False)
        )
        a2 = rt.submit(
            TurnRequest(request_id=-1, seq_id=0, prompt=prompt(8, seed=1), max_new_tokens=2)
        )
        late = rt.submit(
            TurnRequest(request_id=-1, seq_id=1, prompt=prompt(8, seed=2), max_new_tokens=2,
                        arrival=100.0)
        )
        report = rt.run(max_steps=10_000)
        assert report.records[a2].finished_at < 100.0
        assert report.records[late].admitted_at >= 100.0

    def test_zero_budget_turn_never_transfers(self):
        """A max_new_tokens=0 turn finishes at prefill; no payload moves."""
        rt = make_runtime()
        rid = rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(8), max_new_tokens=0))
        report = rt.run(max_steps=1000)
        assert report.records[rid].state is RequestState.FINISHED
        assert report.records[rid].generated == []
        assert report.metrics.transfers == 0
        assert rt.engine.context_length(0) == 0
        assert rt.decode_engine.context_length(0) == 0

    def test_zero_budget_middle_turn_stays_exact(self):
        """A decode-less middle turn leaves the decode pool stale; the next
        turn's delta transfer covers the gap."""
        p1, p2, p3 = prompt(20), prompt(8, seed=2), prompt(6, seed=4)
        rt = make_runtime(world_p=2, world_d=2)
        r1 = rt.submit(
            TurnRequest(request_id=-1, seq_id=0, prompt=p1, max_new_tokens=3, last_turn=False)
        )
        r2 = rt.submit(
            TurnRequest(request_id=-1, seq_id=0, prompt=p2, max_new_tokens=0, last_turn=False)
        )
        r3 = rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=p3, max_new_tokens=4))
        report = rt.run(max_steps=10_000)

        engine = ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=2)
        session = ChatSession(engine, 0)
        assert report.generated(r1) == list(session.send(p1, max_new_tokens=3).generated)
        assert report.generated(r2) == list(session.send(p2, max_new_tokens=0).generated)
        assert report.generated(r3) == list(session.send(p3, max_new_tokens=4).generated)

    def test_requires_shared_model(self):
        e1 = ContextParallelEngine(MODEL, world_size=1)
        e2 = ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=1)
        with pytest.raises(ValueError, match="share model weights"):
            ContinuousBatchingRuntime(e1, decode_engine=e2)


class TestTransferEdgeCases:
    def test_eviction_mid_stream_resumes_exactly(self):
        """Preempting a request whose KV is on the wire cancels the
        transfer, drops the prefill-pool copy, and resumes bit-exactly."""
        rt = make_runtime(clock=UnitStepClock(transfer_cost=9.0))
        rid = rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(40), max_new_tokens=5))
        preempted = False
        while rt.step():
            rec = rt.report().records[rid]
            if not preempted and rec.state is RequestState.KV_TRANSFER:
                rt.preempt(rid)
                preempted = True
                assert rt.engine.context_length(0) == 0
        assert preempted
        report = rt.report()
        assert report.metrics.transfers_cancelled == 1
        assert rt.transfer_stream.in_flight() == []
        assert report.records[rid].preemptions == 1
        assert report.generated(rid) == sequential_tokens(prompt(40), 5)

    def test_decode_pool_refuses_transfer_until_space_frees(self):
        """A transfer that cannot fit behind an *older* active decoder is
        refused (left on the wire) and lands once the decoder finishes —
        FCFS is never violated to admit it."""
        rt = make_runtime(world_p=1, world_d=1, cap_d=90, chunk=16, round_budget=32)
        old = rt.submit(
            TurnRequest(request_id=-1, seq_id=0, prompt=prompt(30), max_new_tokens=20)
        )
        young = rt.submit(
            TurnRequest(
                request_id=-1, seq_id=1, prompt=prompt(50, seed=3), max_new_tokens=2,
                arrival=15.0,
            )
        )
        report = rt.run(max_steps=50_000)
        assert report.metrics.transfer_refusals >= 1
        assert report.records[old].preemptions == 0  # never evicted for the young one
        # the bounded decode pool's occupancy was sampled along the way
        assert 0 < report.metrics.peak_kv_utilization["decode"] <= 1
        assert report.generated(old) == sequential_tokens(prompt(30), 20, world=1)
        assert report.generated(young) == sequential_tokens(prompt(50, seed=3), 2, world=1)

    def test_transfer_evicts_idle_resident_conversation(self):
        """Landing admission evicts an idle decode-pool conversation first;
        the evicted conversation still resumes exactly."""
        gen = WorkloadGenerator(VOCAB, seed=2)
        script = gen.conversation(0, turns=2, first_prompt=40, response_range=(3, 3))
        rt = make_runtime(world_p=1, world_d=1, cap_d=96, chunk=16, round_budget=32)
        rids = rt.submit_script(script, think_time=500.0)  # long idle gap
        crowd = rt.submit(
            TurnRequest(
                request_id=-1, seq_id=99, prompt=prompt(50, seed=4), max_new_tokens=2,
                arrival=20.0,
            )
        )
        report = rt.run(max_steps=50_000)
        assert report.metrics.preemptions > 0
        assert report.records[crowd].state is RequestState.FINISHED
        engine = ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=1)
        session = ChatSession(engine, 0)
        for rid, p, b in zip(rids, script.prompts, script.response_budgets):
            assert report.generated(rid) == list(session.send(p, max_new_tokens=b).generated)

    def test_resident_evicted_during_transfer_reprices_the_wire(self):
        """When decode-pool pressure evicts a conversation's resident copy
        while its follow-up delta is on the wire, the landing re-ships the
        full history and pays the channel again for the extra tokens."""
        cost = 500.0
        rt = make_runtime(
            world_p=1, world_d=1, cap_d=96, chunk=16, round_budget=32,
            clock=UnitStepClock(transfer_cost=cost),
        )
        y1 = rt.submit(
            TurnRequest(request_id=-1, seq_id=0, prompt=prompt(40), max_new_tokens=3,
                        last_turn=False)
        )
        z = rt.submit(
            TurnRequest(request_id=-1, seq_id=1, prompt=prompt(30, seed=3),
                        max_new_tokens=40, arrival=5.0)
        )
        y2 = rt.submit(
            TurnRequest(request_id=-1, seq_id=0, prompt=prompt(8, seed=6),
                        max_new_tokens=2, arrival=600.0)
        )
        report = rt.run(max_steps=100_000)

        # seq 0's resident 40+3 tokens were evicted by Z's decode growth
        # while turn 2's 8-token delta was in flight: the landing re-shipped
        # all 51 positions, occupying the wire a fourth time
        assert report.metrics.preemptions == 1
        assert report.metrics.transfers == 3
        assert report.metrics.transferred_kv_tokens == 40 + 30 + 51
        assert rt.transfer_stream.busy_s == pytest.approx(4 * cost)

        engine = ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=1)
        session = ChatSession(engine, 0)
        assert report.generated(y1) == list(session.send(prompt(40), max_new_tokens=3).generated)
        assert report.generated(y2) == list(
            session.send(prompt(8, seed=6), max_new_tokens=2).generated
        )
        assert report.generated(z) == sequential_tokens(prompt(30, seed=3), 40, world=1)

    def test_context_exceeding_decode_pool_raises(self):
        rt = make_runtime(world_p=1, world_d=1, cap_d=32, chunk=16, round_budget=32)
        rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(64), max_new_tokens=2))
        with pytest.raises(RuntimeError, match="stalled|capacity"):
            rt.run(max_steps=50_000)

    def test_prefill_pool_too_small_raises(self):
        rt = make_runtime(world_p=1, world_d=1, cap_p=16, chunk=8, round_budget=8)
        rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(64), max_new_tokens=2))
        with pytest.raises(RuntimeError, match="capacity"):
            rt.run(max_steps=50_000)


class TestPoolPressure:
    def test_prefill_pool_pressure_preempts_and_stays_exact(self):
        """Concurrent prefills overflowing pool A preempt (youngest first)
        and every conversation still matches sequential replay."""
        gen = WorkloadGenerator(VOCAB, seed=5)
        scripts = [
            gen.conversation(sid, turns=2, first_prompt=48, response_range=(4, 6))
            for sid in range(4)
        ]
        rt = make_runtime(world_p=2, world_d=2, cap_p=80, chunk=16, round_budget=64)
        rid_map = {s.seq_id: rt.submit_script(s, arrival=float(i)) for i, s in enumerate(scripts)}
        report = rt.run(max_steps=200_000)
        assert report.metrics.preemptions > 0
        for script in scripts:
            engine = ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=2)
            session = ChatSession(engine, script.seq_id)
            for rid, p, b in zip(rid_map[script.seq_id], script.prompts, script.response_budgets):
                assert report.generated(rid) == list(session.send(p, max_new_tokens=b).generated)

    def test_decode_pool_pressure_roundtrips_through_prefill(self):
        """A decode-pool eviction sends the request back through prefill
        and a fresh transfer, still bit-exact."""
        rt = make_runtime(world_p=2, world_d=1, cap_d=96, chunk=16, round_budget=32)
        old = rt.submit(
            TurnRequest(request_id=-1, seq_id=0, prompt=prompt(70), max_new_tokens=20)
        )
        young = rt.submit(
            TurnRequest(request_id=-1, seq_id=1, prompt=prompt(8, seed=1), max_new_tokens=40)
        )
        report = rt.run(max_steps=200_000)
        assert report.metrics.preemptions > 0
        assert report.generated(old) == sequential_tokens(prompt(70), 20)
        assert report.generated(young) == sequential_tokens(prompt(8, seed=1), 40)


class TestMetrics:
    def test_per_pool_accounting(self):
        rt = make_runtime(clock=UnitStepClock(prefill_cost=2.0, decode_cost=0.5, transfer_cost=1.0))
        rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(32), max_new_tokens=3))
        report = rt.run(max_steps=1000)
        m = report.metrics
        # 2 prefill rounds (chunk 16) and 3 decode rounds
        assert m.pool_rounds == {"prefill": 2, "decode": 3}
        assert m.pool_busy_s["prefill"] == pytest.approx(4.0)
        assert m.pool_busy_s["decode"] == pytest.approx(1.5)
        util = report.pool_utilization()
        assert 0 < util["decode"] < 1 and 0 < util["prefill"] < 1
        # the decode pool idled while prefill + transfer ran
        assert m.transfer_stall_s > 0
        assert "KV transfers: 1" in m.summary()
        assert "pool busy:" in m.summary()

    def test_transfer_wait_never_reorders_tokens(self):
        """token_times are monotone per request even across the pool hop."""
        rt = make_runtime(clock=UnitStepClock(transfer_cost=3.0))
        rid = rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(24), max_new_tokens=5))
        report = rt.run(max_steps=1000)
        times = report.records[rid].token_times
        assert times == sorted(times)
        assert all(b > a for a, b in zip(times, times[1:]))
