"""Tests for the continuous-batching serving runtime.

Covers the per-request state machine, chunked prefill, decode
interleaving, admission timing, capacity-pressure preemption with exact
resume, idle-conversation eviction, and the streaming metrics. The
full runtime-vs-sequential exactness property lives in
``tests/properties/test_prop_runtime.py``.
"""

import numpy as np
import pytest

from repro.core.engine import ContextParallelEngine
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel
from repro.runtime import (
    ContinuousBatchingRuntime,
    RequestState,
    TurnRequest,
    UnitStepClock,
)
from repro.serving.scheduler import ChunkedPrefillPolicy
from repro.serving.session import ChatSession
from repro.workloads.generator import WorkloadGenerator

MODEL = LlamaModel(tiny_config(), seed=0)
VOCAB = MODEL.config.vocab_size


def make_runtime(*, world=2, capacity=None, chunk=16, round_budget=32, seqs=4, **kw):
    engine = ContextParallelEngine(MODEL, world_size=world, capacity_tokens=capacity)
    return ContinuousBatchingRuntime(
        engine,
        policy=ChunkedPrefillPolicy(
            chunk_tokens=chunk, max_tokens_per_round=round_budget, max_seqs_per_round=seqs
        ),
        **kw,
    )


def prompt(n, seed=0):
    return (np.arange(n) * 7 + seed) % VOCAB


def sequential_tokens(prompt_ids, budget, *, world=2):
    engine = ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=world)
    return list(ChatSession(engine, 0).send(prompt_ids, max_new_tokens=budget).generated)


class TestLifecycle:
    def test_single_request_runs_to_completion(self):
        rt = make_runtime()
        rid = rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(40), max_new_tokens=5))
        report = rt.run(max_steps=1000)
        rec = report.records[rid]
        assert rec.state is RequestState.FINISHED
        assert len(rec.generated) == 5
        assert rec.first_token_at is not None
        assert rec.finished_at >= rec.first_token_at
        # 40 tokens at chunk 16 => 3 prefill rounds; 5 decode rounds
        assert report.prefill_rounds == 3
        assert report.decode_rounds == 5

    def test_tokens_match_sequential(self):
        rt = make_runtime()
        rid = rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(40), max_new_tokens=6))
        report = rt.run(max_steps=1000)
        assert report.generated(rid) == sequential_tokens(prompt(40), 6)

    def test_zero_budget_turn_finishes_at_prefill(self):
        rt = make_runtime()
        rid = rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(8), max_new_tokens=0))
        report = rt.run(max_steps=100)
        rec = report.records[rid]
        assert rec.state is RequestState.FINISHED
        assert rec.generated == []
        assert rec.first_token_at is None
        assert report.decode_rounds == 0

    def test_kv_released_after_last_turn(self):
        rt = make_runtime()
        rt.submit(TurnRequest(request_id=-1, seq_id=7, prompt=prompt(20), max_new_tokens=3))
        rt.run(max_steps=1000)
        assert rt.engine.context_length(7) == 0

    def test_kv_kept_when_not_last_turn(self):
        rt = make_runtime()
        rt.submit(
            TurnRequest(
                request_id=-1, seq_id=7, prompt=prompt(20), max_new_tokens=3, last_turn=False
            )
        )
        rt.run(max_steps=1000)
        assert rt.engine.context_length(7) == 23

    def test_step_false_when_idle(self):
        rt = make_runtime()
        assert rt.step() is False

    def test_duplicate_request_id_rejected(self):
        rt = make_runtime()
        rt.submit(TurnRequest(request_id=3, seq_id=0, prompt=prompt(4), max_new_tokens=0))
        with pytest.raises(ValueError):
            rt.submit(TurnRequest(request_id=3, seq_id=1, prompt=prompt(4), max_new_tokens=0))

    def test_request_validation(self):
        with pytest.raises(ValueError):
            TurnRequest(request_id=0, seq_id=0, prompt=np.zeros(0), max_new_tokens=0)
        with pytest.raises(ValueError):
            TurnRequest(request_id=0, seq_id=0, prompt=prompt(4), max_new_tokens=-1)
        with pytest.raises(ValueError):
            TurnRequest(request_id=0, seq_id=0, prompt=prompt(4), max_new_tokens=0, arrival=-1.0)
        with pytest.raises(ValueError):
            ContinuousBatchingRuntime(
                ContextParallelEngine(MODEL, world_size=2), max_prefill_rounds_per_decode=0
            )


class TestContinuousBatching:
    def test_prefill_chunks_interleave_with_decode(self):
        """While one long prompt prefills in chunks, an already-decoding
        request keeps streaming tokens between the chunks."""
        rt = make_runtime(chunk=8, round_budget=8)
        short = rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(8), max_new_tokens=8))
        long_ = rt.submit(
            TurnRequest(request_id=-1, seq_id=1, prompt=prompt(64, seed=3), max_new_tokens=2)
        )
        report = rt.run(max_steps=1000)
        short_rec, long_rec = report.records[short], report.records[long_]
        # the short request finished its first token before the long
        # prompt's prefill completed
        assert short_rec.first_token_at < long_rec.first_token_at
        # and its decode stream was not starved until the long prefill
        # ended: its last token arrived before the long request's first
        assert short_rec.token_times[-1] < long_rec.first_token_at

    def test_fused_round_batches_multiple_prompts(self):
        rt = make_runtime(chunk=16, round_budget=64)
        for sid in range(4):
            rt.submit(
                TurnRequest(
                    request_id=-1, seq_id=sid, prompt=prompt(16, seed=sid), max_new_tokens=0
                )
            )
        report = rt.run(max_steps=100)
        assert report.prefill_rounds == 1  # all four prompts fused

    def test_decode_rounds_batch_all_decoders(self):
        rt = make_runtime(chunk=32, round_budget=64)
        for sid in range(3):
            rt.submit(
                TurnRequest(
                    request_id=-1, seq_id=sid, prompt=prompt(8, seed=sid), max_new_tokens=4
                )
            )
        report = rt.run(max_steps=1000)
        # 1 fused prefill + 4 batched decode rounds (all sequences together)
        assert report.decode_rounds == 4

    def test_arrival_times_respected(self):
        rt = make_runtime(clock=UnitStepClock())
        early = rt.submit(
            TurnRequest(request_id=-1, seq_id=0, prompt=prompt(8), max_new_tokens=1)
        )
        late = rt.submit(
            TurnRequest(
                request_id=-1, seq_id=1, prompt=prompt(8, seed=1), max_new_tokens=1,
                arrival=50.0,
            )
        )
        report = rt.run(max_steps=1000)
        assert report.records[early].finished_at < 50.0
        assert report.records[late].admitted_at >= 50.0

    def test_turn_chain_waits_for_predecessor(self):
        rt = make_runtime()
        first = rt.submit(
            TurnRequest(
                request_id=-1, seq_id=0, prompt=prompt(24), max_new_tokens=4, last_turn=False
            )
        )
        second = rt.submit(
            TurnRequest(request_id=-1, seq_id=0, prompt=prompt(8, seed=2), max_new_tokens=2)
        )
        report = rt.run(max_steps=1000)
        r1, r2 = report.records[first], report.records[second]
        assert r1.finished_at <= r2.admitted_at
        # the follow-up turn saw the whole first turn as cached context
        assert r2.cached_at_start == 24 + 4

    def test_multi_turn_matches_chat_session(self):
        gen = WorkloadGenerator(VOCAB, seed=9)
        script = gen.conversation(0, turns=3, first_prompt=30)
        rt = make_runtime()
        rids = rt.submit_script(script, think_time=3.0)
        report = rt.run(max_steps=2000)

        engine = ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=2)
        session = ChatSession(engine, 0)
        for rid, p, b in zip(rids, script.prompts, script.response_budgets):
            assert report.generated(rid) == list(session.send(p, max_new_tokens=b).generated)


class TestPreemption:
    def test_capacity_pressure_preempts_and_stays_exact(self):
        gen = WorkloadGenerator(VOCAB, seed=5)
        scripts = [
            gen.conversation(sid, turns=2, first_prompt=48, response_range=(4, 6))
            for sid in range(4)
        ]
        rt = make_runtime(capacity=80)
        rid_map = {s.seq_id: rt.submit_script(s, arrival=float(i)) for i, s in enumerate(scripts)}
        report = rt.run(max_steps=100_000)
        assert report.metrics.preemptions > 0
        assert report.metrics.evicted_tokens > 0
        for script in scripts:
            engine = ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=2)
            session = ChatSession(engine, script.seq_id)
            for rid, p, b in zip(rid_map[script.seq_id], script.prompts, script.response_budgets):
                assert report.generated(rid) == list(session.send(p, max_new_tokens=b).generated)

    def test_forced_preemption_mid_decode_resumes_exactly(self):
        rt = make_runtime()
        rid = rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(40), max_new_tokens=8))
        preempted = False
        while rt.step():
            rec = rt.report().records[rid]
            if not preempted and rec.state is RequestState.DECODE and len(rec.generated) == 4:
                rt.preempt(rid)
                preempted = True
                assert rt.engine.context_length(0) == 0
        assert preempted
        report = rt.report()
        assert report.records[rid].preemptions == 1
        assert report.metrics.preemptions == 1
        assert report.generated(rid) == sequential_tokens(prompt(40), 8)

    def test_forced_preemption_mid_prefill_resumes_exactly(self):
        rt = make_runtime(chunk=8, round_budget=8)
        rid = rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(40), max_new_tokens=4))
        preempted = False
        while rt.step():
            rec = rt.report().records[rid]
            if not preempted and rec.state is RequestState.PREFILL and rec.prefill_done >= 16:
                rt.preempt(rid)
                preempted = True
        assert preempted
        assert rt.report().generated(rid) == sequential_tokens(prompt(40), 4)

    def test_preempt_requires_active_request(self):
        rt = make_runtime()
        rid = rt.submit(
            TurnRequest(request_id=-1, seq_id=0, prompt=prompt(8), max_new_tokens=0, arrival=9.0)
        )
        with pytest.raises(ValueError):
            rt.preempt(rid)  # still QUEUED

    def test_idle_conversation_evicted_under_pressure(self):
        """A conversation waiting between turns loses its KV before any
        active request is preempted, and still resumes exactly."""
        rt = make_runtime(capacity=64)
        gen = WorkloadGenerator(VOCAB, seed=2)
        script = gen.conversation(0, turns=2, first_prompt=30, response_range=(3, 3))
        rids = rt.submit_script(script, think_time=500.0)  # long idle gap
        crowd = rt.submit(
            TurnRequest(
                request_id=-1, seq_id=99, prompt=prompt(90, seed=4), max_new_tokens=2,
                arrival=20.0,
            )
        )
        report = rt.run(max_steps=100_000)
        assert report.metrics.preemptions > 0
        assert report.records[crowd].state is RequestState.FINISHED
        engine = ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=2)
        session = ChatSession(engine, 0)
        for rid, p, b in zip(rids, script.prompts, script.response_budgets):
            assert report.generated(rid) == list(session.send(p, max_new_tokens=b).generated)

    def test_capacity_too_small_raises(self):
        rt = make_runtime(capacity=16, chunk=8, round_budget=8)
        rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(64), max_new_tokens=2))
        with pytest.raises(RuntimeError, match="capacity"):
            rt.run(max_steps=100_000)

    def test_sole_decoder_yields_pool_to_older_request(self):
        """Regression: when the only decoding request is the youngest KV
        holder and an older request needs the space, the decoder is
        preempted (and resumes exactly) instead of the runtime declaring
        the pool exhausted — each conversation fits capacity alone."""
        rt = make_runtime(world=1, capacity=96, chunk=8, round_budget=16)
        old = rt.submit(
            TurnRequest(request_id=-1, seq_id=0, prompt=prompt(80), max_new_tokens=4)
        )
        young = rt.submit(
            TurnRequest(request_id=-1, seq_id=1, prompt=prompt(8, seed=1), max_new_tokens=40)
        )
        report = rt.run(max_steps=100_000)
        assert report.metrics.preemptions > 0
        assert report.generated(old) == sequential_tokens(prompt(80), 4, world=1)
        assert report.generated(young) == sequential_tokens(prompt(8, seed=1), 40, world=1)


class TestPreemptionModes:
    """Tail-trim and CPU-swap remedies: cheaper than recompute, never
    different tokens."""

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="preemption"):
            make_runtime(preemption="hibernate")
        with pytest.raises(ValueError, match="swap_capacity"):
            make_runtime(preemption="trim", swap_capacity_tokens=100)
        with pytest.raises(ValueError, match="swap_capacity"):
            make_runtime(preemption="swap", swap_capacity_tokens=-1)

    def test_trim_keeps_prefix_resident(self):
        """A trimmed decode victim keeps a KV prefix and re-prefills only
        the dropped suffix — exactly."""
        rt = make_runtime(preemption="trim")
        rid = rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(40), max_new_tokens=8))
        trimmed = False
        while rt.step():
            rec = rt.report().records[rid]
            if not trimmed and rec.state is RequestState.DECODE and len(rec.generated) == 4:
                before = rt.engine.context_length(0)
                rt.preempt(rid)
                after = rt.engine.context_length(0)
                assert 0 < after < before
                assert rec.prefill_done == after
                trimmed = True
        assert trimmed
        report = rt.report()
        assert report.metrics.trims == 1
        assert report.metrics.trimmed_kv_tokens > 0
        assert report.metrics.preemptions == 0  # remedy applied, no full evict
        assert report.generated(rid) == sequential_tokens(prompt(40), 8)

    def test_trim_under_capacity_pressure_stays_exact(self):
        gen = WorkloadGenerator(VOCAB, seed=5)
        scripts = [
            gen.conversation(sid, turns=2, first_prompt=48, response_range=(4, 6))
            for sid in range(4)
        ]
        rt = make_runtime(capacity=80, preemption="trim")
        rid_map = {s.seq_id: rt.submit_script(s, arrival=float(i)) for i, s in enumerate(scripts)}
        report = rt.run(max_steps=100_000)
        assert report.metrics.trims > 0
        for script in scripts:
            engine = ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=2)
            session = ChatSession(engine, script.seq_id)
            for rid, p, b in zip(rid_map[script.seq_id], script.prompts, script.response_budgets):
                assert report.generated(rid) == list(session.send(p, max_new_tokens=b).generated)

    def test_trimmed_idle_conversation_resumes_from_prefix(self):
        """An idle conversation trimmed between turns re-prefills only
        the trimmed suffix when its next turn admits."""
        rt = make_runtime(capacity=64, preemption="trim")
        gen = WorkloadGenerator(VOCAB, seed=2)
        script = gen.conversation(0, turns=2, first_prompt=30, response_range=(3, 3))
        rids = rt.submit_script(script, think_time=500.0)
        rt.submit(
            TurnRequest(
                request_id=-1, seq_id=99, prompt=prompt(90, seed=4), max_new_tokens=2,
                arrival=20.0,
            )
        )
        report = rt.run(max_steps=100_000)
        assert report.metrics.trims > 0
        turn2 = report.records[rids[1]]
        # the resident prefix counted as cached when turn 2 started
        assert 0 < turn2.cached_at_start
        engine = ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=2)
        session = ChatSession(engine, 0)
        for rid, p, b in zip(rids, script.prompts, script.response_budgets):
            assert report.generated(rid) == list(session.send(p, max_new_tokens=b).generated)

    def test_swap_decode_victim_resumes_without_recompute(self):
        """A swapped decode victim goes SWAPPED, swaps back in, and
        resumes decoding directly — zero extra prefill rounds."""
        rt = make_runtime(preemption="swap")
        rid = rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(40), max_new_tokens=8))
        swapped = False
        while rt.step():
            rec = rt.report().records[rid]
            if not swapped and rec.state is RequestState.DECODE and len(rec.generated) == 4:
                rt.preempt(rid)
                assert rec.state is RequestState.SWAPPED
                assert rt.engine.context_length(0) == 0
                swapped = True
        assert swapped
        report = rt.report()
        m = report.metrics
        assert m.swaps_out == 1 and m.swaps_in == 1
        assert m.swapped_out_tokens == m.swapped_in_tokens > 0
        assert m.preemptions == 0
        assert report.generated(rid) == sequential_tokens(prompt(40), 8)
        # no re-prefill happened: same prefill rounds as an undisturbed run
        undisturbed = make_runtime()
        undisturbed.submit(
            TurnRequest(request_id=-1, seq_id=0, prompt=prompt(40), max_new_tokens=8)
        )
        assert report.prefill_rounds == undisturbed.run(max_steps=10_000).prefill_rounds

    def test_swap_mid_prefill_resumes_exactly(self):
        rt = make_runtime(chunk=8, round_budget=8, preemption="swap")
        rid = rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(40), max_new_tokens=4))
        swapped = False
        while rt.step():
            rec = rt.report().records[rid]
            if not swapped and rec.state is RequestState.PREFILL and rec.prefill_done >= 16:
                rt.preempt(rid)
                assert rec.state is RequestState.SWAPPED
                swapped = True
        assert swapped
        assert rt.report().generated(rid) == sequential_tokens(prompt(40), 4)

    def test_swap_store_capacity_falls_back_to_full_evict(self):
        """A host store too small for the victim declines the swap; the
        eviction degrades to recompute and stays exact."""
        rt = make_runtime(preemption="swap", swap_capacity_tokens=4)
        rid = rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(40), max_new_tokens=6))
        forced = False
        while rt.step():
            rec = rt.report().records[rid]
            if not forced and rec.state is RequestState.DECODE and len(rec.generated) == 2:
                rt.preempt(rid)
                assert rec.state is RequestState.PREEMPTED  # not SWAPPED
                forced = True
        assert forced
        report = rt.report()
        assert report.metrics.swaps_out == 0
        assert report.metrics.preemptions == 1
        assert report.generated(rid) == sequential_tokens(prompt(40), 6)

    def test_swapped_idle_conversation_restored_for_next_turn(self):
        """An idle conversation swapped out between turns swaps back in
        when its next turn arrives — the history is never recomputed."""
        rt = make_runtime(capacity=64, preemption="swap")
        gen = WorkloadGenerator(VOCAB, seed=2)
        script = gen.conversation(0, turns=2, first_prompt=30, response_range=(3, 3))
        rids = rt.submit_script(script, think_time=500.0)
        rt.submit(
            TurnRequest(
                request_id=-1, seq_id=99, prompt=prompt(90, seed=4), max_new_tokens=2,
                arrival=20.0,
            )
        )
        report = rt.run(max_steps=100_000)
        m = report.metrics
        assert m.swaps_out >= 1 and m.swaps_in == m.swaps_out
        turn2 = report.records[rids[1]]
        # the whole history counted as cached: restored, not re-prefilled
        assert turn2.cached_at_start == 30 + 3
        engine = ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=2)
        session = ChatSession(engine, 0)
        for rid, p, b in zip(rids, script.prompts, script.response_budgets):
            assert report.generated(rid) == list(session.send(p, max_new_tokens=b).generated)

    def test_swap_under_capacity_pressure_stays_exact(self):
        gen = WorkloadGenerator(VOCAB, seed=5)
        scripts = [
            gen.conversation(sid, turns=2, first_prompt=48, response_range=(4, 6))
            for sid in range(4)
        ]
        rt = make_runtime(capacity=80, preemption="swap", swap_capacity_tokens=400)
        rid_map = {s.seq_id: rt.submit_script(s, arrival=float(i)) for i, s in enumerate(scripts)}
        report = rt.run(max_steps=100_000)
        assert report.metrics.swaps_out > 0
        assert report.metrics.swaps_in == report.metrics.swaps_out
        for script in scripts:
            engine = ContextParallelEngine(LlamaModel(tiny_config(), seed=0), world_size=2)
            session = ChatSession(engine, script.seq_id)
            for rid, p, b in zip(rid_map[script.seq_id], script.prompts, script.response_budgets):
                assert report.generated(rid) == list(session.send(p, max_new_tokens=b).generated)

    def test_swap_cost_priced_by_clock(self):
        """Swap-out + swap-in each stall the pool by the clock's price."""
        clock = UnitStepClock(swap_cost=5.0)
        rt = make_runtime(preemption="swap", clock=clock)
        rid = rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(24), max_new_tokens=6))
        swapped = False
        while rt.step():
            rec = rt.report().records[rid]
            if not swapped and rec.state is RequestState.DECODE and len(rec.generated) == 2:
                before = rt.now
                rt.preempt(rid)
                assert rt.now == pytest.approx(before + 5.0)
                swapped = True
        assert swapped
        assert rt.report().metrics.swap_stall_s == pytest.approx(10.0)


class TestMetricsAndClock:
    def test_unit_clock_timing(self):
        rt = make_runtime(clock=UnitStepClock(prefill_cost=2.0, decode_cost=1.0))
        rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(32), max_new_tokens=3))
        report = rt.run(max_steps=1000)
        # 2 prefill rounds * 2.0 + 3 decode rounds * 1.0
        assert report.makespan == pytest.approx(7.0)
        rec = next(iter(report.records.values()))
        assert rec.first_token_at == pytest.approx(4.0)
        assert rec.ttit_samples() == pytest.approx([1.0, 1.0])

    def test_streaming_metrics_recorded(self):
        rt = make_runtime()
        rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(16), max_new_tokens=4))
        report = rt.run(max_steps=1000)
        m = report.metrics
        assert len(m.ttft_samples) == 1
        assert len(m.ttit_samples) == 3
        assert m.total_generated_tokens == 4
        assert report.tokens_per_second() > 0

    def test_turn_records_carry_cache_state(self):
        rt = make_runtime()
        gen = WorkloadGenerator(VOCAB, seed=1)
        rt.submit_script(gen.conversation(0, turns=2, first_prompt=20))
        report = rt.run(max_steps=1000)
        first, second = report.metrics.turns
        assert first.cached_tokens == 0
        assert second.cached_tokens > 0
        assert 0 < second.miss_rate < 1

    def test_state_counts(self):
        rt = make_runtime()
        rt.submit(TurnRequest(request_id=-1, seq_id=0, prompt=prompt(8), max_new_tokens=1))
        assert rt.state_counts() == {"queued": 1}
        rt.run(max_steps=100)
        assert rt.state_counts() == {"finished": 1}
