"""Property-based tests: paged allocator conservation invariants.

Two stateful machines: the original append/release machine, and a
sharing machine that throws admit / share (prefix adoption) / release /
tail-trim / copy-on-write-append schedules at the refcounting allocator
and checks block conservation — every block is free exactly-once or
referenced with a refcount equal to its multiplicity across owner lists,
``fits`` never lies, and a fully drained run leaks no refcounts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.kvcache.paged import OutOfBlocksError, PagedAllocator


class AllocatorMachine(RuleBasedStateMachine):
    """Stateful test: blocks are conserved under any append/release order."""

    def __init__(self):
        super().__init__()
        self.alloc = PagedAllocator(num_blocks=16, block_size=8)
        self.model_tokens: dict[tuple, int] = {}

    @rule(stream=st.integers(0, 5), n=st.integers(0, 30))
    def append(self, stream, n):
        key = (stream,)
        try:
            self.alloc.append(key, n)
            self.model_tokens[key] = self.model_tokens.get(key, 0) + n
        except OutOfBlocksError:
            pass  # state must be unchanged; invariants verify

    @rule(stream=st.integers(0, 5))
    def release(self, stream):
        key = (stream,)
        self.alloc.release(key)
        self.model_tokens.pop(key, None)

    @invariant()
    def tokens_match_model(self):
        for key, tokens in self.model_tokens.items():
            assert self.alloc.stream_tokens(key) == tokens

    @invariant()
    def blocks_conserved(self):
        assert self.alloc.free_blocks + self.alloc.used_blocks == 16

    @invariant()
    def used_blocks_cover_tokens(self):
        for key, tokens in self.model_tokens.items():
            needed = -(-tokens // 8)
            # block count for the stream is exactly ceil(tokens / block)
            assert self.alloc.stream_tokens(key) <= needed * 8

    @invariant()
    def free_tokens_consistent(self):
        free = self.alloc.free_tokens()
        total_stored = sum(self.model_tokens.values())
        assert free >= self.alloc.free_blocks * 8
        assert total_stored + free >= 16 * 8 - 8  # slack bounded per stream


TestAllocatorMachine = AllocatorMachine.TestCase


class SharingAllocatorMachine(RuleBasedStateMachine):
    """Blocks are conserved and refcounts never leak under any
    admit/share/release/trim/copy-on-write schedule."""

    NUM_BLOCKS = 12
    BLOCK = 4

    def __init__(self):
        super().__init__()
        self.alloc = PagedAllocator(num_blocks=self.NUM_BLOCKS, block_size=self.BLOCK)
        self.model_tokens: dict[tuple, int] = {}

    @rule(stream=st.integers(0, 5), n=st.integers(1, 12))
    def append(self, stream, n):
        key = (stream,)
        fits = self.alloc.fits({key: n})
        try:
            self.alloc.append(key, n)
            self.model_tokens[key] = self.model_tokens.get(key, 0) + n
            assert fits, "append succeeded after fits() said no"
        except OutOfBlocksError:
            assert not fits, "fits() approved an append that OOMed"

    @rule(src=st.integers(0, 5), dst=st.integers(0, 5), frac=st.floats(0.1, 1.0))
    def share(self, src, dst, frac):
        """Adopt a prefix of src as a brand-new dst stream."""
        src_key, dst_key = (src,), (dst,)
        if src == dst or dst_key in self.model_tokens or src_key not in self.model_tokens:
            return
        n = max(1, int(self.model_tokens[src_key] * frac))
        used_before = self.alloc.used_blocks
        self.alloc.share(src_key, dst_key, n)
        self.model_tokens[dst_key] = n
        assert self.alloc.used_blocks == used_before, "sharing claimed blocks"

    @rule(stream=st.integers(0, 5))
    def release(self, stream):
        key = (stream,)
        self.alloc.release(key)
        self.model_tokens.pop(key, None)

    @rule(stream=st.integers(0, 5), n=st.integers(1, 8))
    def release_tail(self, stream, n):
        key = (stream,)
        have = self.model_tokens.get(key, 0)
        if have == 0:
            return
        n = min(n, have)
        self.alloc.release_tail(key, n)
        if n == have:
            self.model_tokens.pop(key)
        else:
            self.model_tokens[key] = have - n

    @invariant()
    def tokens_match_model(self):
        for key, tokens in self.model_tokens.items():
            assert self.alloc.stream_tokens(key) == tokens
            # block count is exactly ceil(tokens / block), shared or not
            assert len(self.alloc.stream_blocks(key)) == -(-tokens // self.BLOCK)

    @invariant()
    def blocks_conserved_with_refcounts(self):
        """free exactly-once + referenced-with-correct-multiplicity = pool."""
        free = self.alloc._free
        assert len(set(free)) == len(free), "block double-freed"
        multiplicity: dict[int, int] = {}
        for key in self.model_tokens:
            for b in self.alloc.stream_blocks(key):
                multiplicity[b] = multiplicity.get(b, 0) + 1
        assert not (set(free) & set(multiplicity)), "block both free and owned"
        for b, count in multiplicity.items():
            assert self.alloc.block_refcount(b) == count, (
                f"block {b}: refcount {self.alloc.block_refcount(b)} != "
                f"{count} owner-list references"
            )
        assert len(free) + len(multiplicity) == self.NUM_BLOCKS

    @invariant()
    def drained_pool_leaks_nothing(self):
        if not self.model_tokens:
            assert self.alloc.free_blocks == self.NUM_BLOCKS
            assert self.alloc._ref == {}
            assert self.alloc.free_tokens() == self.NUM_BLOCKS * self.BLOCK

    def teardown(self):
        # drain everything: no refcount may survive
        for key in list(self.model_tokens):
            self.alloc.release(key)
        assert self.alloc.free_blocks == self.NUM_BLOCKS
        assert self.alloc._ref == {}
        super().teardown()


TestSharingAllocatorMachine = SharingAllocatorMachine.TestCase


class TestAppendProperties:
    @given(st.lists(st.integers(1, 10), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_chunked_appends_equal_bulk(self, chunks):
        total = sum(chunks)
        a = PagedAllocator(num_blocks=100, block_size=4)
        for c in chunks:
            a.append(("s",), c)
        b = PagedAllocator(num_blocks=100, block_size=4)
        b.append(("s",), total)
        assert a.stream_tokens(("s",)) == b.stream_tokens(("s",))
        assert a.used_blocks == b.used_blocks
