"""RMS normalization (pre-norm, Llama convention)."""

from __future__ import annotations

import numpy as np


def rms_norm(x: np.ndarray, weight: np.ndarray, *, eps: float = 1e-5) -> np.ndarray:
    """Root-mean-square layer norm: ``x / rms(x) * weight``.

    Token-wise and state-free, so CP ranks apply it locally to their token
    shards with no communication.

    Args:
        x: ``[T, D]`` activations.
        weight: ``[D]`` learned scale.
        eps: numerical floor inside the square root.
    """
    x = np.asarray(x, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    if x.ndim != 2 or weight.shape != (x.shape[-1],):
        raise ValueError(f"shapes: x{x.shape}, weight{weight.shape}")
    rms = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + eps)
    return x / rms * weight
