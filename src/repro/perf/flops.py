"""FLOP counting and utilization (paper Table 3 and Appendix A).

Two kinds of work dominate transformer inference:

- **GEMM**: ``2 * W`` FLOPs per token for a ``W``-parameter dense model
  (Kaplan et al. 2020).
- **Attention**: ``4`` FLOPs per (query, visible-key) pair per model
  dimension — 2 batched matmuls x (multiply + add). The paper's Appendix A
  folds causality into a global ``1/2``; we count pairs exactly so partial
  prefill (``T`` new tokens over ``P`` cached) is handled uniformly:
  ``pairs = T * P + T * (T + 1) / 2``.
"""

from __future__ import annotations

from repro.model.config import ModelConfig


def attention_pairs(new_tokens: int, cached_tokens: int = 0) -> int:
    """Visible (query, key) pairs for causal attention over ``T`` new tokens
    with ``P`` cached tokens.

    Every new token sees all ``P`` cached tokens plus the causal triangle of
    the new tokens (including itself): ``T * P + T * (T + 1) / 2``.
    """
    t, p = new_tokens, cached_tokens
    if t < 0 or p < 0:
        raise ValueError("token counts must be non-negative")
    return t * p + t * (t + 1) // 2


def attention_flops(
    config: ModelConfig, new_tokens: int, cached_tokens: int = 0, *, batch: int = 1
) -> float:
    """Total attention FLOPs across all layers for one prefill.

    ``4 * D * pairs`` per layer (Appendix A's ``1/2 * 4 * B * T^2 * D`` with
    exact pair counting instead of the ``T^2 / 2`` approximation).
    """
    return 4.0 * config.model_dim * attention_pairs(new_tokens, cached_tokens) * config.n_layers * batch


def gemm_flops(config: ModelConfig, tokens: int, *, batch: int = 1) -> float:
    """Linear-layer FLOPs: ``2 * W * tokens`` (Appendix A)."""
    if tokens < 0:
        raise ValueError("tokens must be non-negative")
    return 2.0 * config.param_count * tokens * batch


def model_flops(
    config: ModelConfig, new_tokens: int, cached_tokens: int = 0, *, batch: int = 1
) -> float:
    """GEMM + attention FLOPs for one prefill round."""
    return gemm_flops(config, new_tokens, batch=batch) + attention_flops(
        config, new_tokens, cached_tokens, batch=batch
    )


def mfu(total_flops: float, seconds: float, n_gpus: int, peak_flops_per_gpu: float) -> float:
    """Model FLOPs utilization: achieved / peak (Appendix A).

    The paper reports 502 TF/s/GPU achieved for the 1M prefill = 63% of the
    800 TF/s power-limited peak.
    """
    if seconds <= 0 or n_gpus <= 0 or peak_flops_per_gpu <= 0:
        raise ValueError("seconds, n_gpus and peak must be positive")
    return total_flops / seconds / n_gpus / peak_flops_per_gpu


def achieved_flops_per_gpu(total_flops: float, seconds: float, n_gpus: int) -> float:
    """Sustained FLOP/s per GPU for a measured run."""
    if seconds <= 0 or n_gpus <= 0:
        raise ValueError("seconds and n_gpus must be positive")
    return total_flops / seconds / n_gpus


def weight_bytes(
    config: ModelConfig, *, ffn_bytes: float = 1.0, other_bytes: float = 2.0
) -> float:
    """Model weight footprint with mixed precision.

    The paper serves FFN weights in row-wise FP8 (1 byte) and the rest
    (attention projections, embeddings) in BF16 (2 bytes); decode latency is
    dominated by streaming these bytes from HBM every step.
    """
    ffn = config.n_layers * config.ffn_params_per_layer
    other = config.param_count - ffn
    return ffn * ffn_bytes + other * other_bytes
