"""Tests for the disaggregated serving model."""

import pytest

from repro.model.config import llama3_405b_config
from repro.perf.hardware import gtt_host
from repro.serving.disaggregated import DisaggregatedSimulator


@pytest.fixture(scope="module")
def sim():
    return DisaggregatedSimulator(llama3_405b_config(), gtt_host())


class TestLatencies:
    def test_disaggregated_decode_matches_tp8(self, sim):
        disagg = sim.disaggregated(131072, 100, prefill_ranks=4)
        tp8_ttit = sim.sim.tp_decode(131072, n_nodes=1).total
        assert disagg.ttit == pytest.approx(tp8_ttit)

    def test_colocated_decode_pays_cp_tax(self, sim):
        colo = sim.colocated(131072, 100, n_ranks=4)
        disagg = sim.disaggregated(131072, 100, prefill_ranks=4)
        assert colo.ttit > disagg.ttit

    def test_kv_transfer_scales_with_context(self, sim):
        assert sim.kv_transfer_time(262144) == pytest.approx(
            2 * sim.kv_transfer_time(131072)
        )

    def test_transfer_tail_exposed_in_ttft(self, sim):
        colo = sim.colocated(131072, 0, n_ranks=4)
        disagg = sim.disaggregated(131072, 0, prefill_ranks=4)
        tail = disagg.ttft - colo.ttft
        assert tail == pytest.approx(
            sim.kv_transfer_time(131072) / sim.config.n_layers
        )

    def test_total_composition(self, sim):
        r = sim.disaggregated(131072, 50, prefill_ranks=2)
        assert r.total == pytest.approx(r.ttft + 50 * r.ttit)

    def test_colocated_single_rank_uses_tp_decode(self, sim):
        r = sim.colocated(131072, 10, n_ranks=1)
        assert r.ttit == pytest.approx(sim.sim.tp_decode(131072, n_nodes=1).total)


class TestBreakEven:
    def test_break_even_small_for_long_context(self, sim):
        be = sim.break_even_output_tokens(131072, n_ranks=4)
        assert 0 <= be < 64

    def test_longer_responses_favor_disaggregation(self, sim):
        be = sim.break_even_output_tokens(131072, n_ranks=4)
        short = max(be - 1, 0)
        colo_s = sim.colocated(131072, short, n_ranks=4)
        disagg_s = sim.disaggregated(131072, short, prefill_ranks=4)
        colo_l = sim.colocated(131072, be + 100, n_ranks=4)
        disagg_l = sim.disaggregated(131072, be + 100, prefill_ranks=4)
        assert disagg_l.total < colo_l.total
        if short < be:
            assert colo_s.total <= disagg_s.total
