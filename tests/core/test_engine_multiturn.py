"""Multi-turn (persistent KV) engine tests: the paper's core inference loop."""

import numpy as np
import pytest

from repro.core.engine import ContextParallelEngine
from repro.core.heuristics import HeuristicConfig, RingAlgo
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel


@pytest.fixture(scope="module")
def model():
    return LlamaModel(tiny_config(), seed=11)


class TestMultiTurn:
    def test_partial_prefill_matches_forward(self, model):
        """Turn 2's logits equal a from-scratch forward over the whole
        history — losslessness across the persistent sharded cache."""
        engine = ContextParallelEngine(model, world_size=3)
        v = model.config.vocab_size
        t1 = np.arange(19) % v
        t2 = (np.arange(7) + 3) % v
        engine.prefill({0: t1})
        out2 = engine.prefill({0: t2})
        ref = model.forward(np.concatenate([t1, t2]))
        np.testing.assert_allclose(out2.logits[0], ref[-7:], atol=1e-9)

    def test_prefill_decode_prefill_roundtrip(self, model):
        """Full conversation: prefill -> decode x3 -> partial prefill ->
        decode, always matching the monolithic forward."""
        engine = ContextParallelEngine(model, world_size=2)
        v = model.config.vocab_size
        history = []

        t1 = np.arange(10) % v
        engine.prefill({0: t1})
        history.extend(t1)

        for tok in (5, 9, 2):
            step = engine.decode({0: tok})
            history.append(tok)
            ref = model.forward(np.array(history))
            np.testing.assert_allclose(step.logits[0], ref[-1], atol=1e-9)

        t2 = (np.arange(6) + 1) % v
        out = engine.prefill({0: t2})
        history.extend(t2)
        ref = model.forward(np.array(history))
        np.testing.assert_allclose(out.logits[0], ref[-6:], atol=1e-9)

        step = engine.decode({0: 7})
        history.append(7)
        ref = model.forward(np.array(history))
        np.testing.assert_allclose(step.logits[0], ref[-1], atol=1e-9)

    def test_heuristic_flips_to_passq_on_followup(self, model):
        """With hardware constants configured, a short follow-up against a
        long cached context selects pass-Q (and stays exact)."""
        cfg = model.config
        heuristic = HeuristicConfig(
            n_heads=cfg.n_heads,
            n_kv_heads=cfg.n_kv_heads,
            element_bytes=2.0,
            peak_compute=8 * 540e12,
            bandwidth=220e9,
            world_size=2,
        )
        engine = ContextParallelEngine(model, world_size=2, heuristic=heuristic)
        v = cfg.vocab_size
        t1 = np.arange(120) % v
        out1 = engine.prefill({0: t1})
        assert out1.plan.algo is RingAlgo.PASS_KV
        t2 = np.array([3])  # 1/121 miss rate, tiny T
        out2 = engine.prefill({0: t2})
        assert out2.plan.algo is RingAlgo.PASS_Q
        ref = model.forward(np.concatenate([t1, t2]))
        np.testing.assert_allclose(out2.logits[0][-1], ref[-1], atol=1e-9)

    def test_interleaved_sequences(self, model):
        """Two conversations advancing out of lockstep stay isolated."""
        engine = ContextParallelEngine(model, world_size=2)
        v = model.config.vocab_size
        a1 = np.arange(9) % v
        b1 = (np.arange(14) + 2) % v
        engine.prefill({0: a1})
        engine.prefill({1: b1})
        engine.decode({0: 1})
        a2 = np.array([4, 6]) % v
        out = engine.prefill({0: a2})
        ref = model.forward(np.concatenate([a1, [1], a2]))
        np.testing.assert_allclose(out.logits[0], ref[-2:], atol=1e-9)
        # sequence 1 untouched by sequence 0's turns
        step = engine.decode({1: 8})
        ref_b = model.forward(np.concatenate([b1, [8]]))
        np.testing.assert_allclose(step.logits[1], ref_b[-1], atol=1e-9)

    def test_decode_kv_spread_then_partial_prefill(self, model):
        """Decode tokens land on different ranks (round robin); the next
        partial prefill must still see them all — the exact scenario the
        pad-per-sequence invariant exists for."""
        world = 3
        engine = ContextParallelEngine(model, world_size=world)
        v = model.config.vocab_size
        t1 = np.arange(8) % v
        engine.prefill({0: t1})
        history = list(t1)
        for tok in (1, 2, 3, 4, 5):
            engine.decode({0: tok % v})
            history.append(tok % v)
        t2 = np.array([9, 10, 11]) % v
        out = engine.prefill({0: t2})
        history.extend(t2)
        ref = model.forward(np.array(history))
        np.testing.assert_allclose(out.logits[0], ref[-3:], atol=1e-9)
