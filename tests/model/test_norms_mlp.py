"""Tests for RMSNorm and SwiGLU."""

import numpy as np
import pytest

from repro.model.mlp import silu, swiglu
from repro.model.norms import rms_norm


class TestRmsNorm:
    def test_unit_rms_output(self, rng):
        x = rng.standard_normal((5, 32)) * 10
        out = rms_norm(x, np.ones(32))
        rms = np.sqrt(np.mean(out * out, axis=-1))
        np.testing.assert_allclose(rms, 1.0, atol=1e-4)

    def test_weight_scales(self, rng):
        x = rng.standard_normal((3, 8))
        w = np.full(8, 2.0)
        np.testing.assert_allclose(rms_norm(x, w), 2 * rms_norm(x, np.ones(8)), atol=1e-12)

    def test_scale_invariance(self, rng):
        """RMSNorm(c * x) == RMSNorm(x) for c > 0 (up to eps)."""
        x = rng.standard_normal((4, 64))
        a = rms_norm(x, np.ones(64), eps=0.0)
        b = rms_norm(7.0 * x, np.ones(64), eps=0.0)
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_tokenwise_independence(self, rng):
        """Each row normalizes independently — why CP needs no comm here."""
        x = rng.standard_normal((6, 16))
        full = rms_norm(x, np.ones(16))
        per_row = np.vstack([rms_norm(x[i : i + 1], np.ones(16)) for i in range(6)])
        np.testing.assert_allclose(full, per_row, atol=1e-12)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            rms_norm(np.zeros((2, 4)), np.zeros(5))
        with pytest.raises(ValueError):
            rms_norm(np.zeros(4), np.zeros(4))


class TestSilu:
    def test_known_values(self):
        assert silu(np.array([0.0]))[0] == 0.0
        assert silu(np.array([100.0]))[0] == pytest.approx(100.0)
        assert silu(np.array([-100.0]))[0] == pytest.approx(0.0, abs=1e-9)

    def test_matches_sigmoid_form(self, rng):
        x = rng.standard_normal(100)
        expected = x / (1.0 + np.exp(-x))
        np.testing.assert_allclose(silu(x), expected, atol=1e-12)


class TestSwiglu:
    def test_shapes(self, rng):
        x = rng.standard_normal((5, 8))
        g = rng.standard_normal((8, 16))
        u = rng.standard_normal((8, 16))
        d = rng.standard_normal((16, 8))
        assert swiglu(x, g, u, d).shape == (5, 8)

    def test_matches_manual(self, rng):
        x = rng.standard_normal((2, 4))
        g = rng.standard_normal((4, 6))
        u = rng.standard_normal((4, 6))
        d = rng.standard_normal((6, 4))
        manual = (silu(x @ g) * (x @ u)) @ d
        np.testing.assert_allclose(swiglu(x, g, u, d), manual, atol=1e-12)

    def test_tokenwise_independence(self, rng):
        x = rng.standard_normal((4, 4))
        g = rng.standard_normal((4, 8))
        u = rng.standard_normal((4, 8))
        d = rng.standard_normal((8, 4))
        full = swiglu(x, g, u, d)
        rows = np.vstack([swiglu(x[i : i + 1], g, u, d) for i in range(4)])
        np.testing.assert_allclose(full, rows, atol=1e-12)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            swiglu(np.zeros((2, 4)), np.zeros((5, 6)), np.zeros((5, 6)), np.zeros((6, 4)))
        with pytest.raises(ValueError):
            swiglu(np.zeros((2, 4)), np.zeros((4, 6)), np.zeros((4, 6)), np.zeros((5, 4)))
