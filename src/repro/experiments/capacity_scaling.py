"""KV-capacity scaling with CP ranks (paper motivation #3, §1 and §4.2.3).

CP distributes KV storage, so aggregate cache capacity — and therefore the
maximum servable context — grows linearly with ranks. This experiment
computes the max context per CP rank count for Llama3 405B (HBM budget
after FP8 weights and activations) and demonstrates, on the numeric
engine, that round-robin decode postpones the OOM a pinned-decode scheme
hits early (§3.6).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.kvcache.cache import CacheCapacityError, RankKVCache
from repro.model.config import llama3_405b_config
from repro.perf.flops import weight_bytes
from repro.perf.hardware import HostSpec, gtt_host


def max_context_tokens(
    n_ranks: int,
    host: HostSpec,
    *,
    kv_element_bytes: float = 2.0,
    activation_reserve: float = 0.15,
) -> int:
    """Max single-sequence context a CP deployment can cache.

    Per rank: HBM minus FP8 weights minus an activation reserve, divided by
    per-token KV bytes; aggregate = per-rank * N (load-balanced sharding
    splits every sequence evenly).
    """
    cfg = llama3_405b_config()
    hbm = host.gpus_per_host * host.gpu.hbm_capacity
    weights = weight_bytes(cfg)  # FP8 FFN + BF16 rest, TP-sharded across the host
    budget = (1.0 - activation_reserve) * hbm - weights
    if budget <= 0:
        return 0
    return int(budget / cfg.kv_bytes_per_token(kv_element_bytes)) * n_ranks


def decode_oom_comparison(*, capacity_per_rank: int = 64, world: int = 4) -> tuple[int, int]:
    """Numeric §3.6 demonstration: decode steps until OOM.

    Returns ``(pinned_steps, round_robin_steps)`` — how many single-token
    appends fit before a rank overflows when decode KV always lands on rank
    0 versus rotating round-robin.
    """
    def run(round_robin: bool) -> int:
        caches = [
            RankKVCache(1, 1, 4, capacity_tokens=capacity_per_rank, block_size=4)
            for _ in range(world)
        ]
        k = np.zeros((1, 1, 4))
        steps = 0
        while True:
            rank = (steps % world) if round_robin else 0
            try:
                caches[rank].append(0, 0, k, k, np.array([steps]))
            except CacheCapacityError:
                return steps
            steps += 1
            if steps > capacity_per_rank * world + 1:
                return steps

    return run(False), run(True)


def run(host: HostSpec | None = None) -> ExperimentResult:
    host = host if host is not None else gtt_host()
    res = ExperimentResult(
        experiment_id="Capacity scaling",
        title="Max cacheable context vs CP ranks (Llama3 405B)",
        headers=["ranks", "GPUs", "max context (bf16 KV)", "max context (int8 KV)"],
    )
    for n in (1, 2, 4, 8, 16):
        res.add_row(
            n,
            n * host.gpus_per_host,
            max_context_tokens(n, host, kv_element_bytes=2.0),
            max_context_tokens(n, host, kv_element_bytes=1.0),
        )
    pinned, rr = decode_oom_comparison()
    res.notes.append(
        "bf16 KV crosses 1M at 4 ranks in this single-sequence budget; the "
        "paper operates 1M on 8-16 nodes (§4.2.3), which additionally "
        "provisions for batching and latency, not just capacity."
    )
    res.notes.append(
        f"§3.6 numeric check: pinned decode OOMs after {pinned} steps; "
        f"round-robin sustains {rr} (full aggregate capacity)."
    )
    res.paper_values["min_ranks_for_1m"] = 8
    return res
