"""Extension: colocated vs disaggregated serving (paper §4.3 guidance)."""

from repro.experiments import disaggregation
from repro.model.config import llama3_405b_config
from repro.perf.hardware import gtt_host
from repro.serving.disaggregated import DisaggregatedSimulator


def bench_disaggregation(benchmark, paper_table):
    result = benchmark(disaggregation.run)
    paper_table(benchmark, result)
    # disaggregated TTIT equals single-host decode; colocated pays CP tax
    colo_ttit = result.column("colocated TTIT (ms)")[0]
    disagg_ttit = result.column("disaggregated TTIT (ms)")[0]
    assert disagg_ttit < colo_ttit
    # for long responses disaggregation wins end-to-end
    assert result.column("winner")[-1] == "disaggregated"


def bench_break_even(benchmark):
    sim = DisaggregatedSimulator(llama3_405b_config(), gtt_host())
    breakeven = benchmark(sim.break_even_output_tokens, 131072, n_ranks=4)
    # the KV stream overlaps layer-wise, so the break-even is tiny
    assert 0 <= breakeven < 64


if __name__ == "__main__":
    print(disaggregation.run().render())
