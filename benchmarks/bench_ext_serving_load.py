"""Extension: serving under Poisson load, colocated vs disaggregated (§4.3)."""

from repro.experiments import serving_load


def bench_serving_load(benchmark, paper_table):
    result = benchmark(serving_load.run)
    paper_table(benchmark, result)
    rows = result.rows
    # pair up (colocated, disaggregated) per rate
    for colo, disagg in zip(rows[0::2], rows[1::2]):
        assert colo[1] == "colocated" and disagg[1] == "disaggregated"
        # decode experience: disaggregated per-token latency much lower
        assert disagg[4] < colo[4]
        # end-to-end latency better when disaggregated
        assert disagg[5] <= colo[5]
    # colocated decode stall grows with load; disaggregated stays flat
    colo_per_token = [r[4] for r in rows if r[1] == "colocated"]
    disagg_per_token = [r[4] for r in rows if r[1] == "disaggregated"]
    assert colo_per_token == sorted(colo_per_token)
    assert max(disagg_per_token) / min(disagg_per_token) < 1.05


if __name__ == "__main__":
    print(serving_load.run().render())
