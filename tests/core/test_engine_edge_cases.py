"""Engine edge cases: degenerate worlds, reuse, capacity, topologies."""

import numpy as np
import pytest

from repro.core.engine import ContextParallelEngine
from repro.distributed.topology import gti_topology, gtt_topology
from repro.kvcache.cache import CacheCapacityError
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel


@pytest.fixture(scope="module")
def model():
    return LlamaModel(tiny_config(), seed=41)


class TestDegenerateShapes:
    def test_more_ranks_than_tokens(self, model):
        """A 3-token prompt on 8 ranks leaves most ranks empty — still exact."""
        engine = ContextParallelEngine(model, world_size=8)
        toks = np.array([1, 2, 3])
        out = engine.prefill({0: toks})
        np.testing.assert_allclose(out.logits[0], model.forward(toks), atol=1e-9)

    def test_single_token_prompt(self, model):
        engine = ContextParallelEngine(model, world_size=4)
        out = engine.prefill({0: np.array([5])})
        np.testing.assert_allclose(out.logits[0], model.forward(np.array([5])), atol=1e-9)

    def test_world_size_one(self, model):
        engine = ContextParallelEngine(model, world_size=1)
        toks = np.arange(10) % model.config.vocab_size
        out = engine.prefill({0: toks})
        np.testing.assert_allclose(out.logits[0], model.forward(toks), atol=1e-9)
        step = engine.decode({0: 1})
        ref = model.forward(np.concatenate([toks, [1]]))
        np.testing.assert_allclose(step.logits[0], ref[-1], atol=1e-9)

    def test_vocab_boundary_tokens(self, model):
        v = model.config.vocab_size
        engine = ContextParallelEngine(model, world_size=2)
        toks = np.array([0, v - 1, 0, v - 1])
        out = engine.prefill({0: toks})
        np.testing.assert_allclose(out.logits[0], model.forward(toks), atol=1e-9)


class TestSequenceLifecycle:
    def test_seq_id_reuse_after_release(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        engine.prefill({0: np.arange(8)})
        engine.release(0)
        toks = (np.arange(5) + 3) % model.config.vocab_size
        out = engine.prefill({0: toks})
        # a released id starts fresh: logits match a from-scratch forward
        np.testing.assert_allclose(out.logits[0], model.forward(toks), atol=1e-9)

    def test_decode_subset_of_sequences(self, model):
        """Decoding only some sequences must not disturb the others."""
        engine = ContextParallelEngine(model, world_size=2)
        a = np.arange(6) % model.config.vocab_size
        b = (np.arange(9) + 4) % model.config.vocab_size
        engine.prefill({0: a, 1: b})
        engine.decode({0: 1})
        engine.decode({0: 2})
        step = engine.decode({1: 7})  # first decode for seq 1, step offset 2
        ref = model.forward(np.concatenate([b, [7]]))
        np.testing.assert_allclose(step.logits[1], ref[-1], atol=1e-9)


class TestCapacity:
    def test_prefill_oom_raises(self, model):
        engine = ContextParallelEngine(model, world_size=2, capacity_tokens=8)
        with pytest.raises(CacheCapacityError):
            engine.prefill({0: np.arange(40) % model.config.vocab_size})

    def test_within_capacity_ok(self, model):
        engine = ContextParallelEngine(model, world_size=2, capacity_tokens=32)
        out = engine.prefill({0: np.arange(20) % model.config.vocab_size})
        assert 0 in out.logits


class TestTopologies:
    @pytest.mark.parametrize("topo_fn", [gtt_topology, gti_topology])
    def test_engine_runs_on_paper_topologies(self, model, topo_fn):
        engine = ContextParallelEngine(model, world_size=2, topology=topo_fn(2))
        toks = np.arange(12) % model.config.vocab_size
        out = engine.prefill({0: toks})
        np.testing.assert_allclose(out.logits[0], model.forward(toks), atol=1e-9)
        # traced durations reflect the topology's bandwidth
        assert engine.tracer.total_duration("sendrecv") > 0

    def test_gti_slower_than_gtt_in_trace(self, model):
        toks = np.arange(24) % model.config.vocab_size
        e_gtt = ContextParallelEngine(model, world_size=2, topology=gtt_topology(2))
        e_gti = ContextParallelEngine(model, world_size=2, topology=gti_topology(2))
        e_gtt.prefill({0: toks})
        e_gti.prefill({0: toks})
        assert (
            e_gti.tracer.total_duration("sendrecv")
            > e_gtt.tracer.total_duration("sendrecv")
        )
