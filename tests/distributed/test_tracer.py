"""Tests for the communication tracer."""

import pytest

from repro.distributed.tracer import CommTracer


class TestCommTracer:
    def test_record_and_aggregate(self):
        tr = CommTracer()
        tr.record("sendrecv", step=0, nbytes=100, duration=1e-3)
        tr.record("sendrecv", step=1, nbytes=200, duration=2e-3)
        tr.record("all2all", nbytes=50, duration=5e-4)
        assert len(tr) == 3
        assert tr.total_bytes() == 350
        assert tr.total_bytes("sendrecv") == 300
        assert tr.total_duration("all2all") == pytest.approx(5e-4)
        assert tr.count("sendrecv") == 2
        assert tr.bytes_by_kind() == {"sendrecv": 300, "all2all": 50}

    def test_clear(self):
        tr = CommTracer()
        tr.record("attn", duration=1.0)
        tr.clear()
        assert len(tr) == 0
        assert tr.total_duration() == 0.0

    def test_iteration(self):
        tr = CommTracer()
        tr.record("a", nbytes=1)
        tr.record("b", nbytes=2)
        kinds = [e.kind for e in tr]
        assert kinds == ["a", "b"]

    def test_summary_lists_kinds(self):
        tr = CommTracer()
        tr.record("sendrecv", nbytes=10, duration=0.1)
        tr.record("allreduce", nbytes=20, duration=0.2)
        text = tr.summary()
        assert "sendrecv" in text and "allreduce" in text

    def test_compute_events_carry_no_bytes(self):
        tr = CommTracer()
        tr.record("attn", duration=0.5)
        assert tr.total_bytes("attn") == 0
        assert tr.total_duration("attn") == pytest.approx(0.5)
