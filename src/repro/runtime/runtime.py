"""Continuous-batching serving runtime over the numeric CP engine.

:class:`ContinuousBatchingRuntime` is the first subsystem where every layer
of the reproduction executes together under live traffic: the
:class:`repro.core.engine.ContextParallelEngine` produces numerically exact
logits, the :class:`repro.serving.scheduler.ChunkedPrefillPolicy` packs
budget-bounded prefill chunks, the paged KV allocator enforces per-rank
capacity, the planner's pass-KV/pass-Q heuristic fires per chunk, and the
:mod:`repro.runtime.clock` prices every engine round in simulated seconds
for streaming TTFT/TTIT metrics.

Scheduling model (event-driven, deterministic):

- **Chunked prefill**: pending prompts commit in FIFO order, at most
  ``chunk_tokens`` per request per round, fused across requests up to the
  round token budget. Each chunk is a partial prefill over the KV the
  previous chunks committed, so a long prompt never monopolizes the
  engine and the heuristic can flip to pass-Q as the chunk-local
  cache-hit rate climbs.
- **Decode interleaving**: when requests are decoding, at most
  ``max_prefill_rounds_per_decode`` prefill rounds run between batched
  decode rounds (all decoding sequences advance one token per round).
- **Admission & preemption**: before any round, its exact per-rank KV
  token demand (from the engine's load-balanced sharding) is checked
  against the paged pools. Under pressure the runtime evicts, in order:
  idle conversations (between turns), then the *youngest* active request
  — never one older than any beneficiary of the round, so admission stays
  FCFS. A preempted request loses all cached KV and later re-prefills its
  full committed history in chunks; because the algorithms are exact for
  any sharding and chunking, the resumed request's tokens are identical
  to an uninterrupted run (pinned by property tests).

Exactness contract: for greedy decoding, the per-request token streams are
identical to replaying each conversation sequentially through
:class:`repro.serving.session.ChatSession` on a dedicated engine —
continuous batching, chunking and preemption change *placement and
timing*, never values.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import ContextParallelEngine
from repro.core.sharding import SequenceSpec
from repro.model.sampling import sample_greedy
from repro.runtime.clock import UnitStepClock
from repro.runtime.state import RequestRecord, RequestState, TurnRequest
from repro.serving.metrics import ServingMetrics
from repro.serving.request import TurnRecord
from repro.serving.scheduler import ChunkAssignment, ChunkedPrefillPolicy
from repro.workloads.generator import ConversationScript

#: States in which a request occupies (or is about to occupy) engine KV.
_ACTIVE_STATES = (RequestState.PREFILL, RequestState.DECODE)


@dataclass
class RuntimeReport:
    """Aggregate outcome of a runtime run.

    This is a *live view*, not a snapshot: ``records`` and ``metrics``
    reference the runtime's own mutable state, so a report taken mid-run
    keeps updating as further steps execute (which is what lets tests and
    external policies inspect in-flight requests cheaply). Take the
    report after :meth:`ContinuousBatchingRuntime.run` drains — or copy
    fields — when a frozen snapshot is needed.

    Attributes:
        records: every submitted request's record, by request id.
        metrics: rolled-up serving metrics (turns, TTFT/TTIT percentiles,
            preemption/eviction counters).
        makespan: simulated seconds from 0 to the last round's end.
        prefill_rounds / decode_rounds: executed engine rounds by kind.
    """

    records: dict[int, RequestRecord] = field(default_factory=dict)
    metrics: ServingMetrics = field(default_factory=ServingMetrics)
    makespan: float = 0.0
    prefill_rounds: int = 0
    decode_rounds: int = 0

    @property
    def generated_tokens(self) -> int:
        return sum(len(r.generated) for r in self.records.values())

    def tokens_per_second(self) -> float:
        """Decoded tokens per simulated second over the makespan."""
        return self.generated_tokens / self.makespan if self.makespan > 0 else 0.0

    def generated(self, request_id: int) -> list[int]:
        return list(self.records[request_id].generated)


class ContinuousBatchingRuntime:
    """Event-driven continuous batching over one CP engine.

    Args:
        engine: the numeric engine (its ``capacity_tokens`` is the KV
            pressure source; unbounded engines never preempt).
        policy: chunked-prefill round packing (default 512-token chunks,
            test scale).
        clock: round pricer (default :class:`UnitStepClock`).
        max_prefill_rounds_per_decode: prefill rounds allowed between
            decode rounds while any request is decoding (>= 1). Higher
            values favour TTFT over TTIT.
    """

    def __init__(
        self,
        engine: ContextParallelEngine,
        *,
        policy: ChunkedPrefillPolicy | None = None,
        clock=None,
        max_prefill_rounds_per_decode: int = 1,
    ):
        if max_prefill_rounds_per_decode < 1:
            raise ValueError(
                f"max_prefill_rounds_per_decode must be >= 1, got {max_prefill_rounds_per_decode}"
            )
        self.engine = engine
        self.policy = policy if policy is not None else ChunkedPrefillPolicy(
            chunk_tokens=512, max_tokens_per_round=2048, max_seqs_per_round=8
        )
        self.clock = clock if clock is not None else UnitStepClock()
        self.max_prefill_rounds_per_decode = max_prefill_rounds_per_decode

        self.now = 0.0
        self.metrics = ServingMetrics()
        self.prefill_rounds = 0
        self.decode_rounds = 0
        self._records: dict[int, RequestRecord] = {}
        self._chains: dict[int, list[int]] = {}  # seq_id -> unfinished turn rids, in order
        self._turn_history: dict[int, list[int]] = {}  # seq_id -> tokens of finished turns
        self._prefill_queue: list[tuple[tuple[float, int], int]] = []  # (sort key, rid)
        self._prefill_streak = 0
        self._next_rid = 0
        # incremental indices so per-step bookkeeping is O(active), not
        # O(all requests ever submitted); _records itself retains finished
        # requests deliberately — it is the report() API surface
        self._live: set[int] = set()  # rids not yet FINISHED
        self._decoding: set[int] = set()  # rids in DECODE state
        self._waiting: set[int] = set()  # seq_ids whose chain head is QUEUED
        self._kv_holders: set[int] = set()  # seq_ids with tokens in engine KV

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #

    def submit(self, request: TurnRequest) -> int:
        """Enqueue one turn; returns its request id.

        Turns sharing a ``seq_id`` form a conversation: they run in submit
        order over one persistent KV stream, each waiting for its
        predecessor to finish.
        """
        if request.request_id < 0:
            request.request_id = self._next_rid
        if request.request_id in self._records:
            raise ValueError(f"request {request.request_id} already submitted")
        self._next_rid = max(self._next_rid, request.request_id) + 1
        self._records[request.request_id] = RequestRecord(request=request)
        chain = self._chains.setdefault(request.seq_id, [])
        chain.append(request.request_id)
        self._turn_history.setdefault(request.seq_id, [])
        self._live.add(request.request_id)
        if len(chain) == 1:
            self._waiting.add(request.seq_id)
        return request.request_id

    def submit_script(
        self,
        script: ConversationScript,
        *,
        arrival: float = 0.0,
        think_time: float = 0.0,
    ) -> list[int]:
        """Enqueue a whole scripted conversation; returns its request ids.

        Turn ``i`` arrives no earlier than ``arrival + i * think_time``
        (and never before its predecessor finishes).
        """
        if think_time < 0:
            raise ValueError("think_time must be >= 0")
        rids = []
        n = script.turns
        for i, (prompt, budget) in enumerate(zip(script.prompts, script.response_budgets)):
            rids.append(
                self.submit(
                    TurnRequest(
                        request_id=-1,
                        seq_id=script.seq_id,
                        prompt=prompt,
                        max_new_tokens=int(budget),
                        arrival=arrival + i * think_time,
                        last_turn=(i == n - 1),
                    )
                )
            )
        return rids

    # ------------------------------------------------------------------ #
    # event loop
    # ------------------------------------------------------------------ #

    def run(self, *, max_steps: int | None = None) -> RuntimeReport:
        """Drive :meth:`step` until every submitted request finishes."""
        steps = 0
        while self.step():
            steps += 1
            if max_steps is not None and steps >= max_steps:
                raise RuntimeError(f"runtime did not drain within {max_steps} steps")
        return self.report()

    def step(self) -> bool:
        """Execute one engine round (or advance the clock to the next
        arrival). Returns ``True`` while unfinished requests remain."""
        if not self._any_live():
            return False
        self._admit()
        if not self._prefill_queue and not self._decoders():
            nxt = self._next_arrival()
            assert nxt is not None, "live requests but nothing runnable or arriving"
            self.now = max(self.now, nxt)
            self._admit()

        decoders = self._decoders()
        want_decode = decoders and (
            not self._prefill_queue
            or self._prefill_streak >= self.max_prefill_rounds_per_decode
        )
        if not want_decode and self._prefill_queue:
            if self._prefill_round():
                self._prefill_streak += 1
                return self._any_live()
            decoders = self._decoders()  # fit loop may have preempted some
            if not decoders:
                rid = self._prefill_queue[0][1]
                raise RuntimeError(
                    f"KV capacity exhausted: request {rid} cannot prefill even "
                    "one token after evicting every eligible victim"
                )
        if decoders:
            self._decode_round(decoders)
            self._prefill_streak = 0
        return self._any_live()

    def report(self) -> RuntimeReport:
        """Current :class:`RuntimeReport` (a live view; see its docs)."""
        return RuntimeReport(
            records=dict(self._records),
            metrics=self.metrics,
            makespan=self.now,
            prefill_rounds=self.prefill_rounds,
            decode_rounds=self.decode_rounds,
        )

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def _admit(self) -> None:
        """Move eligible chain-head turns into the prefill FIFO."""
        for seq_id in sorted(self._waiting):
            rec = self._records[self._chains[seq_id][0]]
            if rec.request.arrival > self.now:
                continue
            self._waiting.discard(seq_id)
            rec.state = RequestState.PREFILL
            rec.admitted_at = self.now
            rec.cached_at_start = self.engine.context_length(seq_id)
            if rec.cached_at_start == 0 and self._turn_history[seq_id]:
                # the idle conversation was evicted between turns: fold the
                # full committed history back into this turn's prefill
                rec.pending_input = np.asarray(
                    self._turn_history[seq_id] + list(rec.request.prompt), dtype=np.int64
                )
            self._enqueue_prefill(rec)

    def _enqueue_prefill(self, rec: RequestRecord) -> None:
        key = (rec.request.arrival, rec.request_id)
        bisect.insort(self._prefill_queue, (key, rec.request_id))

    # ------------------------------------------------------------------ #
    # prefill rounds
    # ------------------------------------------------------------------ #

    def _prefill_round(self) -> bool:
        """Build, fit and execute one chunked prefill round.

        Returns ``False`` when not even a one-token chunk of the FIFO head
        fits after exhausting every eligible victim (the caller decides
        whether decoding can make progress instead).
        """
        by_seq = {self._records[rid].seq_id: self._records[rid] for _, rid in self._prefill_queue}
        pending = []
        for _, rid in self._prefill_queue:
            rec = self._records[rid]
            pending.append((rec.seq_id, rec.prefill_remaining))
        round_ = self.policy.build_round(pending)
        round_ = self._fit_prefill_round(round_, by_seq)
        if not round_:
            return False

        prompts: dict[int, np.ndarray] = {}
        chunk_tp: list[tuple[int, int]] = []
        for chunk in round_:
            rec = by_seq[chunk.seq_id]
            lo = rec.prefill_done
            prompts[chunk.seq_id] = rec.pending_input[lo : lo + chunk.tokens]
            chunk_tp.append((chunk.tokens, self.engine.context_length(chunk.seq_id)))

        out = self.engine.prefill(prompts)
        self.now += self.clock.price_prefill(chunk_tp)
        self.prefill_rounds += 1
        self._kv_holders.update(prompts)

        for chunk in round_:
            rec = by_seq[chunk.seq_id]
            rec.state = RequestState.PREFILL
            rec.prefill_done += chunk.tokens
            rec.chunk_algos.append(out.plan.algo.value)
            if rec.prefill_remaining == 0:
                self._dequeue_prefill(rec)
                self._on_prefill_complete(rec, out.last_logits(chunk.seq_id))
        return True

    def _on_prefill_complete(self, rec: RequestRecord, last_logits: np.ndarray) -> None:
        if rec.request.max_new_tokens == 0:
            self._finish_turn(rec)
            return
        if rec.resample_on_prefill:
            token = int(sample_greedy(last_logits))
            rec.generated.append(token)
            rec.token_times.append(self.now)
            if rec.first_token_at is None:
                rec.first_token_at = self.now
        # post-preemption resume keeps its already-sampled pending token —
        # the re-prefill logits would reproduce it exactly
        rec.resample_on_prefill = True
        rec.state = RequestState.DECODE
        self._decoding.add(rec.request_id)

    def _fit_prefill_round(
        self,
        round_: list[ChunkAssignment],
        by_seq: dict[int, RequestRecord],
    ) -> list[ChunkAssignment]:
        """Shrink/evict until the round's exact per-rank KV demand fits.

        Victims must be younger than every beneficiary (FCFS): when none
        qualify, the round drops its own youngest member instead, and the
        last remaining chunk shrinks down to whatever fits.
        """
        while round_:
            specs = [
                SequenceSpec(c.seq_id, c.tokens, self.engine.context_length(c.seq_id))
                for c in round_
            ]
            if self.engine.fits(self.engine.prefill_token_demand(specs)):
                return round_
            tail_key = max(
                (by_seq[c.seq_id].request.arrival, by_seq[c.seq_id].request_id)
                for c in round_
            )
            victim = self._find_victim(
                protected={c.seq_id for c in round_}, younger_than=tail_key
            )
            if victim is not None:
                self._evict(victim)
                continue
            if len(round_) > 1:
                round_.pop()
                continue
            head = round_[0]
            cached = self.engine.context_length(head.seq_id)
            best = self._max_fitting_chunk(head.seq_id, cached, head.tokens)
            if best == 0:
                return []
            return [ChunkAssignment(seq_id=head.seq_id, tokens=best)]
        return []

    def _max_fitting_chunk(self, seq_id: int, cached: int, want: int) -> int:
        """Largest chunk of ``[1, want]`` tokens whose demand fits (0 = none)."""
        lo, hi, best = 1, want, 0
        while lo <= hi:
            mid = (lo + hi) // 2
            demand = self.engine.prefill_token_demand([SequenceSpec(seq_id, mid, cached)])
            if self.engine.fits(demand):
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    # ------------------------------------------------------------------ #
    # decode rounds
    # ------------------------------------------------------------------ #

    def _decode_round(self, decoders: list[RequestRecord]) -> None:
        """Advance every decoding request one token (with capacity fitting)."""
        live = sorted(decoders, key=lambda r: (r.request.arrival, r.request_id))
        while live:
            sids = [r.seq_id for r in live]
            if self.engine.fits(self.engine.decode_token_demand(sids)):
                break
            victim = self._find_victim(protected=set(), younger_than=None)
            if victim is None:
                raise RuntimeError(
                    "KV capacity exhausted: a decode step cannot fit even "
                    "after evicting every eligible victim"
                )
            if isinstance(victim, RequestRecord) and len(live) == 1 and victim is live[0]:
                # the sole decoder is itself the youngest KV holder.
                # Preempting it only makes sense when a strictly older
                # request is waiting for the space (FCFS hands the pool
                # over); otherwise re-prefill would just hit this same
                # wall and the workload genuinely exceeds capacity.
                vkey = (victim.request.arrival, victim.request_id)
                older_waiting = any(
                    (self._records[rid].request.arrival, rid) < vkey
                    for rid in self._live
                    if rid != victim.request_id
                )
                if not older_waiting:
                    raise RuntimeError(
                        "KV capacity exhausted: the last decoding request "
                        "cannot fit its next token and no older request is "
                        "waiting for the space"
                    )
            self._evict(victim)
            if isinstance(victim, RequestRecord) and victim in live:
                live.remove(victim)
        if not live:
            return

        contexts = [self.engine.context_length(r.seq_id) + 1 for r in live]
        tokens = {r.seq_id: r.generated[-1] for r in live}
        out = self.engine.decode(tokens)
        self.now += self.clock.price_decode(contexts)
        self.decode_rounds += 1

        for rec in live:
            if len(rec.generated) < rec.request.max_new_tokens:
                token = int(sample_greedy(out.logits[rec.seq_id]))
                rec.generated.append(token)
                rec.token_times.append(self.now)
            else:
                # the round just committed the final token's KV
                self._finish_turn(rec)

    # ------------------------------------------------------------------ #
    # preemption
    # ------------------------------------------------------------------ #

    def preempt(self, request_id: int) -> None:
        """Forcibly evict an active request (tests / external policies)."""
        rec = self._records[request_id]
        if rec.state not in _ACTIVE_STATES:
            raise ValueError(f"request {request_id} is {rec.state.value}, not preemptible")
        self._evict(rec)

    def _find_victim(
        self,
        *,
        protected: set[int],
        younger_than: tuple[float, int] | None,
    ):
        """Next KV holder to evict: idle conversations first (no pending
        turn, then latest next-arrival), then the youngest active request
        (only if younger than ``younger_than`` when given). ``None`` when
        nothing is evictable."""
        idle_free, idle_pending = [], []
        for seq_id in self._kv_holders:
            if seq_id in protected:
                continue
            chain = self._chains.get(seq_id)
            if not chain:
                idle_free.append(seq_id)
                continue
            head = self._records[chain[0]]
            if head.state not in _ACTIVE_STATES:  # holder waiting between turns
                idle_pending.append((head.request.arrival, seq_id))
        if idle_free:
            return min(idle_free)
        if idle_pending:
            return max(idle_pending)[1]

        candidates = [
            rec
            for rec in (self._records[rid] for rid in self._live)
            if rec.state in _ACTIVE_STATES
            and rec.seq_id not in protected
            and self.engine.context_length(rec.seq_id) > 0
        ]
        if not candidates:
            return None
        rec = max(candidates, key=lambda r: (r.request.arrival, r.request_id))
        if younger_than is not None and (rec.request.arrival, rec.request_id) <= younger_than:
            return None
        return rec

    def _evict(self, victim) -> None:
        """Evict an idle conversation (``int`` seq id) or an active request."""
        if isinstance(victim, RequestRecord):
            self._preempt_record(victim)
            return
        freed = self.engine.evict(victim)
        self._kv_holders.discard(victim)
        self.metrics.record_preemption(freed)

    def _preempt_record(self, rec: RequestRecord) -> None:
        freed = self.engine.evict(rec.seq_id)
        self._kv_holders.discard(rec.seq_id)
        self.metrics.record_preemption(freed)
        rec.preemptions += 1
        # tokens whose KV was committed by decode rounds (all generated but
        # the in-flight last one) fold into the re-prefill input; the
        # pending sampled token survives and is NOT resampled on resume
        committed_generated = rec.generated[:-1] if rec.generated else []
        rec.resample_on_prefill = not rec.generated
        rec.pending_input = np.asarray(
            self._turn_history[rec.seq_id]
            + list(rec.request.prompt)
            + [int(t) for t in committed_generated],
            dtype=np.int64,
        )
        rec.prefill_done = 0
        was_decoding = rec.state is RequestState.DECODE
        rec.state = RequestState.PREEMPTED
        self._decoding.discard(rec.request_id)
        if was_decoding or not self._in_prefill_queue(rec):
            self._enqueue_prefill(rec)

    def _in_prefill_queue(self, rec: RequestRecord) -> bool:
        return any(rid == rec.request_id for _, rid in self._prefill_queue)

    def _dequeue_prefill(self, rec: RequestRecord) -> None:
        self._prefill_queue = [
            (key, rid) for key, rid in self._prefill_queue if rid != rec.request_id
        ]

    # ------------------------------------------------------------------ #
    # completion
    # ------------------------------------------------------------------ #

    def _finish_turn(self, rec: RequestRecord) -> None:
        rec.state = RequestState.FINISHED
        rec.finished_at = self.now
        self._live.discard(rec.request_id)
        self._decoding.discard(rec.request_id)
        seq_id = rec.seq_id
        self._turn_history[seq_id].extend(int(t) for t in rec.request.prompt)
        self._turn_history[seq_id].extend(rec.generated)
        chain = self._chains[seq_id]
        assert chain and chain[0] == rec.request_id, "turn finished out of chain order"
        chain.pop(0)
        if chain:
            self._waiting.add(seq_id)  # next turn's head is now eligible
        self.metrics.record_turn(
            TurnRecord(
                seq_id=seq_id,
                prompt_tokens=int(rec.request.prompt.size),
                cached_tokens=rec.cached_at_start,
                response_tokens=len(rec.generated),
                algo=rec.chunk_algos[-1] if rec.chunk_algos else "none",
                generated=list(rec.generated),
            ),
            ttft=rec.ttft if rec.first_token_at is not None else None,
        )
        for gap in rec.ttit_samples():
            self.metrics.record_ttit(gap)
        if rec.request.last_turn and not chain:
            # conversation over: release KV and prune per-seq state (a
            # later submit for the same seq_id starts a fresh conversation)
            self.engine.release(seq_id)
            self._kv_holders.discard(seq_id)
            del self._chains[seq_id]
            del self._turn_history[seq_id]

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def _decoders(self) -> list[RequestRecord]:
        return [self._records[rid] for rid in self._decoding]

    def _any_live(self) -> bool:
        return bool(self._live)

    def _next_arrival(self) -> float | None:
        times = [
            self._records[self._chains[seq_id][0]].request.arrival
            for seq_id in self._waiting
        ]
        return min(times) if times else None

    def state_counts(self) -> dict[str, int]:
        """Requests per lifecycle state (diagnostics)."""
        counts: dict[str, int] = {}
        for rec in self._records.values():
            counts[rec.state.value] = counts.get(rec.state.value, 0) + 1
        return counts
