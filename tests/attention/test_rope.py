"""Tests for rotary position embeddings."""

import numpy as np
import pytest

from repro.attention.rope import apply_rope, rope_frequencies


class TestRopeFrequencies:
    def test_shape_and_range(self):
        freqs = rope_frequencies(16)
        assert freqs.shape == (8,)
        assert freqs[0] == 1.0
        assert np.all(np.diff(freqs) < 0)  # strictly decreasing

    def test_odd_head_dim_raises(self):
        with pytest.raises(ValueError):
            rope_frequencies(15)


class TestApplyRope:
    def test_position_zero_is_identity(self, rng):
        x = rng.standard_normal((4, 2, 8))
        out = apply_rope(x, np.zeros(4))
        np.testing.assert_allclose(out, x, atol=1e-12)

    def test_norm_preserved(self, rng):
        """Rotation preserves per-pair L2 norms."""
        x = rng.standard_normal((6, 3, 16))
        out = apply_rope(x, np.arange(6) * 1000)
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), atol=1e-9
        )

    def test_relative_position_property(self, rng):
        """<RoPE(q, m), RoPE(k, n)> depends only on m - n."""
        q = rng.standard_normal((1, 1, 32))
        k = rng.standard_normal((1, 1, 32))
        def dot(m, n):
            qm = apply_rope(q, np.array([m]))
            kn = apply_rope(k, np.array([n]))
            return float(np.sum(qm * kn))
        assert dot(5, 3) == pytest.approx(dot(105, 103), abs=1e-9)
        assert dot(7, 0) == pytest.approx(dot(1007, 1000), abs=1e-9)

    def test_rotation_composes(self, rng):
        """Rotating by m then n equals rotating by m + n."""
        x = rng.standard_normal((1, 1, 8))
        once = apply_rope(apply_rope(x, np.array([3])), np.array([4]))
        direct = apply_rope(x, np.array([7]))
        np.testing.assert_allclose(once, direct, atol=1e-9)

    def test_precomputed_freqs_match(self, rng):
        x = rng.standard_normal((3, 2, 8))
        pos = np.array([1, 5, 9])
        freqs = rope_frequencies(8, theta=500000.0)
        np.testing.assert_array_equal(
            apply_rope(x, pos), apply_rope(x, pos, freqs=freqs)
        )

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            apply_rope(rng.standard_normal((3, 8)), np.arange(3))
        with pytest.raises(ValueError):
            apply_rope(rng.standard_normal((3, 2, 8)), np.arange(4))
