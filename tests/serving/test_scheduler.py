"""Tests for the fused-batch scheduler."""

import numpy as np
import pytest

from repro.serving.request import PrefillRequest
from repro.serving.scheduler import Scheduler


def req(seq_id, n):
    return PrefillRequest(seq_id=seq_id, token_ids=np.arange(n) % 50)


class TestScheduler:
    def test_fifo_order(self):
        s = Scheduler(max_tokens_per_batch=1000)
        for i in range(3):
            s.submit(req(i, 10))
        batch = s.next_batch()
        assert batch.seq_ids == [0, 1, 2]
        assert s.pending() == 0

    def test_token_budget_splits(self):
        s = Scheduler(max_tokens_per_batch=25)
        s.submit(req(0, 20))
        s.submit(req(1, 20))
        first = s.next_batch()
        assert first.seq_ids == [0]
        second = s.next_batch()
        assert second.seq_ids == [1]

    def test_oversized_request_runs_alone(self):
        s = Scheduler(max_tokens_per_batch=8)
        s.submit(req(0, 100))
        batch = s.next_batch()
        assert batch.seq_ids == [0]

    def test_seq_cap(self):
        s = Scheduler(max_tokens_per_batch=10_000, max_seqs_per_batch=2)
        for i in range(5):
            s.submit(req(i, 4))
        assert s.next_batch().seq_ids == [0, 1]
        assert s.next_batch().seq_ids == [2, 3]
        assert s.next_batch().seq_ids == [4]

    def test_idle_returns_none(self):
        assert Scheduler().next_batch() is None

    def test_duplicate_seq_rejected(self):
        s = Scheduler()
        s.submit(req(0, 4))
        with pytest.raises(ValueError):
            s.submit(req(0, 6))

    def test_prompts_mapping(self):
        s = Scheduler()
        s.submit(req(3, 7))
        batch = s.next_batch()
        prompts = batch.prompts()
        assert list(prompts) == [3]
        assert prompts[3].shape == (7,)
        assert batch.total_new_tokens == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            Scheduler(max_tokens_per_batch=0)
        with pytest.raises(ValueError):
            PrefillRequest(seq_id=0, token_ids=np.zeros(0))
        with pytest.raises(ValueError):
            PrefillRequest(seq_id=0, token_ids=np.arange(3), max_new_tokens=-1)
