"""Property-based tests: heuristic selectors behave monotonically."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heuristics import (
    HeuristicConfig,
    RingAlgo,
    select_algo_simple,
    select_algo_with_all2all,
)

SETTINGS = dict(max_examples=100, deadline=None)


@st.composite
def config_strategy(draw):
    nkv = draw(st.sampled_from([1, 2, 4, 8]))
    group = draw(st.sampled_from([1, 2, 4, 8, 16]))
    return HeuristicConfig(
        n_heads=nkv * group,
        n_kv_heads=nkv,
        element_bytes=draw(st.sampled_from([1.0, 2.0])),
        peak_compute=draw(st.floats(1e14, 1e16)),
        bandwidth=draw(st.floats(1e9, 1e12)),
        world_size=draw(st.integers(1, 16)),
    )


class TestSelectorMonotonicity:
    @given(config_strategy(), st.integers(1, 10**6), st.integers(0, 10**7))
    @settings(**SETTINGS)
    def test_full_prefill_with_large_t_is_passkv(self, cfg, t, p):
        """Above both thresholds the answer is always pass-KV."""
        big_t = int(cfg.passkv_overlap_threshold) + 1 + t
        assert select_algo_simple(cfg, big_t, p) is RingAlgo.PASS_KV

    @given(config_strategy(), st.integers(1, 10**6), st.integers(0, 10**7))
    @settings(**SETTINGS)
    def test_alg5_never_moves_kv_to_q(self, cfg, t, p):
        """Algorithm 5 is Algorithm 1 with an extra pass-KV-favouring term:
        anything Algorithm 1 sends to pass-KV stays pass-KV."""
        if select_algo_simple(cfg, t, p) is RingAlgo.PASS_KV:
            assert select_algo_with_all2all(cfg, t, p) is RingAlgo.PASS_KV

    @given(config_strategy(), st.integers(1, 10**5), st.integers(0, 10**7))
    @settings(**SETTINGS)
    def test_monotone_in_cached_tokens(self, cfg, t, p):
        """Adding cached tokens (raising hit rate) can only move the choice
        toward pass-Q, never back toward pass-KV."""
        first = select_algo_simple(cfg, t, p)
        more_cache = select_algo_simple(cfg, t, p + 10_000)
        if first is RingAlgo.PASS_Q:
            assert more_cache is RingAlgo.PASS_Q

    @given(config_strategy(), st.integers(0, 10**6))
    @settings(**SETTINGS)
    def test_decode_shape_prefers_passq_when_overlap_fails(self, cfg, p):
        """T=1 with a huge cache picks pass-Q unless the overlap threshold
        is microscopically small."""
        if cfg.passkv_overlap_threshold > 1 and (1 / (1 + p)) < cfg.kv_message_ratio:
            assert select_algo_simple(cfg, 1, p) is RingAlgo.PASS_Q
