"""Tests for position/sequence-id based attention masks."""

import numpy as np
import pytest

from repro.attention.masks import PAD_SEQ, attention_mask, causal_mask, mask_fraction


class TestCausalMask:
    def test_storage_order_matches_triangular(self):
        t = 9
        pos = np.arange(t)
        mask = causal_mask(pos, pos)
        expected = np.tril(np.ones((t, t), dtype=bool))
        assert np.array_equal(mask, expected)

    def test_permutation_invariance(self):
        """The mask depends only on positions, not storage order."""
        rng = np.random.default_rng(0)
        pos = np.arange(12)
        perm = rng.permutation(12)
        base = causal_mask(pos, pos)
        permuted = causal_mask(pos[perm], pos[perm])
        assert np.array_equal(permuted, base[np.ix_(perm, perm)])

    def test_disjoint_position_ranges(self):
        """Partial prefill: new tokens see all earlier cached positions."""
        q_pos = np.array([10, 11])
        k_pos = np.arange(12)
        mask = causal_mask(q_pos, k_pos)
        assert mask[0, :11].all() and not mask[0, 11]
        assert mask[1].all()

    def test_empty(self):
        mask = causal_mask(np.zeros(0, dtype=int), np.arange(5))
        assert mask.shape == (0, 5)


class TestAttentionMask:
    def test_cross_sequence_blocked(self):
        q_pos = np.array([0, 0])
        k_pos = np.array([0, 0])
        q_seq = np.array([0, 1])
        k_seq = np.array([0, 1])
        mask = attention_mask(q_pos, k_pos, q_seq, k_seq)
        assert np.array_equal(mask, np.eye(2, dtype=bool))

    def test_padding_never_attends(self):
        q_pos = np.array([3])
        k_pos = np.array([0, 1, 2])
        k_seq = np.array([0, PAD_SEQ, 0])
        mask = attention_mask(q_pos, k_pos, np.array([0]), k_seq)
        assert mask.tolist() == [[True, False, True]]

    def test_padding_query_row_empty(self):
        mask = attention_mask(
            np.array([5]), np.arange(3), np.array([PAD_SEQ]), np.zeros(3, dtype=int)
        )
        assert not mask.any()

    def test_non_causal(self):
        mask = attention_mask(np.arange(3), np.arange(3), causal=False)
        assert mask.all()

    def test_defaults_single_sequence(self):
        mask = attention_mask(np.arange(4), np.arange(4))
        assert np.array_equal(mask, np.tril(np.ones((4, 4), dtype=bool)))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            attention_mask(np.arange(3), np.arange(3), q_seq=np.zeros(2, dtype=int))

    def test_mask_fraction_causal_half(self):
        mask = attention_mask(np.arange(100), np.arange(100))
        assert mask_fraction(mask) == pytest.approx(0.505, abs=1e-3)

    def test_mask_fraction_empty(self):
        assert mask_fraction(np.zeros((0, 5), dtype=bool)) == 0.0
