"""Extension experiment: shared-prefix KV reuse (radix prefix cache).

Production traffic is heavily templated — N system prompts x M few-shot
variants fan out into thousands of conversations whose first hundreds of
tokens are identical — yet a cache-less runtime prices every prompt as
cold, re-prefilling the shared prefix per request. This experiment
replays the same templated trace through the continuous-batching runtime
with the radix prefix cache on and off, colocated and disaggregated, at
a sweep of template counts (fewer templates = higher hit rate), with
rounds priced for Llama3 405B by the calibrated clock.

What the table shows:

- **hit rate / reused tokens**: the index matches every conversation
  after the first occurrence of its template, and adoption charges zero
  new blocks for the shared span (allocator refcounts).
- **warm vs cold TTFT**: a warm request prefills only its uncached
  suffix, so its first token lands strictly earlier than a cold
  request's at every swept hit rate — the RadixAttention/Mooncake
  headline, asserted in-experiment for every row with hit rate >= 50%.
- **capacity**: finished conversations stay resident as LRU-evictable
  cached prefixes, so the pool runs fuller (that is the cache working);
  shared blocks are counted once, and under pressure the least-recently
  -used unpinned prefixes are dropped first (the ``prefix evictions``
  column).

Every cell is bit-checked: cache on, cache off, and sequential
per-conversation :class:`repro.serving.session.ChatSession` replay must
decode identical tokens — the serving-exactness invariant extended over
hit/miss/eviction/copy-on-write schedules.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config, tiny_config
from repro.perf.hardware import HostSpec, gtt_host
from repro.perf.latency import LatencySimulator

#: Deployment shapes compared, in sweep order.
DEPLOYMENTS = ("colocated", "disaggregated")


def run(
    host: HostSpec | None = None,
    *,
    conversations: int = 8,
    template_sweep: tuple[int, ...] = (1, 2, 4),
    world_size: int = 2,
    decode_world: int = 2,
    capacity: int = 256,
    priced_ranks: int = 4,
    seed: int = 11,
) -> ExperimentResult:
    """Hit rate vs TTFT and capacity for the radix prefix cache.

    Numerics run the tiny model (prefill pool at ``world_size``, decode
    pool at ``decode_world`` when disaggregated); the step clock prices
    rounds for Llama3 405B on ``priced_ranks`` CP hosts. ``capacity``
    bounds each pool's per-rank KV tokens tightly enough that retained
    cached prefixes eventually LRU-evict. Conversations arrive staggered
    (30 s apart), so TTFT measures service, not queueing.

    Raises:
        AssertionError: tokens differ between cache on/off/sequential
            replay, or a row with hit rate >= 50% fails to put warm TTFT
            strictly below cold TTFT.
    """
    from repro.core.engine import ContextParallelEngine
    from repro.model.llama import LlamaModel
    from repro.runtime import ContinuousBatchingRuntime, SimulatedStepClock
    from repro.serving.scheduler import ChunkedPrefillPolicy
    from repro.workloads.generator import WorkloadGenerator
    from repro.workloads.replay import (
        collect_generated,
        replay_scripts_sequential,
        submit_scripts_to_runtime,
    )

    host = host if host is not None else gtt_host()
    model = LlamaModel(tiny_config(), seed=0)
    sim = LatencySimulator(llama3_405b_config(), host)

    res = ExperimentResult(
        experiment_id="Prefix reuse",
        title=(
            f"{conversations} templated conversations through the radix "
            f"prefix cache (CP{world_size} numerics, CP{priced_ranks} 405B "
            f"pricing, {capacity} KV tokens/rank)"
        ),
        headers=[
            "deployment", "templates", "hit rate", "reused tokens",
            "p50 TTFT warm (s)", "p50 TTFT cold (s)", "p50 TTFT no-cache (s)",
            "peak KV (cache)", "peak KV (no cache)", "prefix evictions",
        ],
    )

    def build_runtime(deployment: str, cache_on: bool) -> ContinuousBatchingRuntime:
        policy = ChunkedPrefillPolicy(
            chunk_tokens=16, max_tokens_per_round=32, max_seqs_per_round=4
        )
        if deployment == "colocated":
            return ContinuousBatchingRuntime(
                ContextParallelEngine(
                    model, world_size=world_size, capacity_tokens=capacity
                ),
                policy=policy,
                clock=SimulatedStepClock(sim, n_ranks=priced_ranks),
                prefix_cache=cache_on,
            )
        return ContinuousBatchingRuntime(
            ContextParallelEngine(
                model, world_size=world_size, capacity_tokens=capacity
            ),
            decode_engine=ContextParallelEngine(
                model, world_size=decode_world, capacity_tokens=capacity
            ),
            policy=policy,
            clock=SimulatedStepClock(sim, n_ranks=priced_ranks, tp_decode=True),
            prefix_cache=cache_on,
        )

    for deployment in DEPLOYMENTS:
        for n_templates in template_sweep:
            gen = WorkloadGenerator(model.config.vocab_size, seed=seed)
            scripts = gen.shared_prefix_traffic(
                n_system_prompts=n_templates,
                n_fewshot_variants=2,
                conversations=conversations,
                system_tokens=48,
                fewshot_tokens=16,
                unique_range=(8, 16),
                turns=1,
                response_range=(3, 5),
            )
            tokens_by_mode = {}
            reports = {}
            for cache_on in (True, False):
                runtime = build_runtime(deployment, cache_on)
                rids = submit_scripts_to_runtime(
                    runtime, scripts, start_offset_s=30.0, think_time_s=30.0
                )
                report = runtime.run(max_steps=400_000)
                reports[cache_on] = report
                tokens_by_mode[cache_on] = collect_generated(report, rids)
            reference = replay_scripts_sequential(
                lambda: ContextParallelEngine(
                    LlamaModel(tiny_config(), seed=0), world_size=world_size
                ),
                scripts,
            )
            for s in scripts:
                for cache_on in (True, False):
                    assert tokens_by_mode[cache_on][s.seq_id] == reference[s.seq_id], (
                        "serving-level exactness violated: prefix cache "
                        f"(on={cache_on}) changed decoded tokens for seq "
                        f"{s.seq_id} ({deployment}, {n_templates} templates)"
                    )

            m_on = reports[True].metrics
            m_off = reports[False].metrics
            hit_rate = m_on.prefix_hit_rate
            warm = m_on.percentile_ttft_split(50, warm=True)
            cold = m_on.percentile_ttft_split(50, warm=False)
            if hit_rate >= 0.5 and m_on.ttft_warm_samples and m_on.ttft_cold_samples:
                assert warm < cold, (
                    f"warm p50 TTFT {warm:.3f}s not strictly below cold "
                    f"{cold:.3f}s at hit rate {hit_rate:.0%} "
                    f"({deployment}, {n_templates} templates)"
                )
            res.add_row(
                deployment,
                n_templates,
                hit_rate,
                m_on.prefix_reused_tokens,
                warm,
                cold,
                m_off.percentile_ttft(50),
                f"{m_on.peak_kv_utilization.get('prefill', 0.0):.0%}",
                f"{m_off.peak_kv_utilization.get('prefill', 0.0):.0%}",
                m_on.prefix_evictions,
            )

    res.notes.append(
        "Every cell decodes bit-identical tokens with the cache on, off, "
        "and under sequential per-conversation replay (asserted): sharing "
        "changes what a prompt costs, never what it computes."
    )
    res.notes.append(
        "Warm p50 TTFT is strictly below cold at every row with hit rate "
        ">= 50% (asserted in-experiment): a warm request prefills only its "
        "uncached suffix. Peak KV runs higher with the cache because "
        "finished conversations stay resident as LRU-evictable donors — "
        "shared blocks are still counted once by the refcounting allocator, "
        "and the tightest cells show the LRU dropping the least-recently-"
        "used templates (the hit rate falls as distinct templates outgrow "
        "the pool)."
    )
    return res
