"""Tests for FLOP counting and MFU (Appendix A)."""

import pytest

from repro.model.config import llama3_405b_config
from repro.perf.flops import (
    achieved_flops_per_gpu,
    attention_flops,
    attention_pairs,
    gemm_flops,
    mfu,
    model_flops,
    weight_bytes,
)


class TestAttentionPairs:
    def test_full_prefill_triangle(self):
        assert attention_pairs(4, 0) == 4 + 3 + 2 + 1

    def test_partial_prefill(self):
        assert attention_pairs(2, 10) == 2 * 10 + 3

    def test_decode_token(self):
        assert attention_pairs(1, 100) == 101

    def test_zero(self):
        assert attention_pairs(0, 50) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            attention_pairs(-1, 0)


class TestAppendixA:
    def test_1m_attention_flops(self):
        """Appendix A: ~4.1e18 attention FLOPs for 1M context."""
        cfg = llama3_405b_config()
        flops = attention_flops(cfg, 1_000_000, 0)
        # exact pair counting vs the paper's T^2/2 approximation
        assert flops == pytest.approx(4.13e18, rel=0.02)

    def test_1m_gemm_flops(self):
        """Appendix A: GEMM = 2 * 405B * 1M ~ 8.1e17."""
        cfg = llama3_405b_config()
        assert gemm_flops(cfg, 1_000_000) == pytest.approx(8.1e17, rel=0.02)

    def test_paper_mfu_calculation(self):
        """77 s on 128 H100s -> ~502 TF/s/GPU -> ~63% of 800 TF/s peak."""
        cfg = llama3_405b_config()
        total = model_flops(cfg, 1_000_000, 0)
        per_gpu = achieved_flops_per_gpu(total, 77.0, 128)
        assert per_gpu == pytest.approx(502e12, rel=0.05)
        assert mfu(total, 77.0, 128, 800e12) == pytest.approx(0.63, abs=0.03)

    def test_attention_dominates_at_1m(self):
        cfg = llama3_405b_config()
        assert attention_flops(cfg, 1_000_000) > 4 * gemm_flops(cfg, 1_000_000)

    def test_gemm_dominates_at_8k(self):
        cfg = llama3_405b_config()
        assert gemm_flops(cfg, 8192) > 10 * attention_flops(cfg, 8192)


class TestWeightBytes:
    def test_mixed_precision_between_full_precisions(self):
        cfg = llama3_405b_config()
        mixed = weight_bytes(cfg)
        assert weight_bytes(cfg, ffn_bytes=2, other_bytes=2) == pytest.approx(2 * cfg.param_count)
        assert cfg.param_count < mixed < 2 * cfg.param_count

    def test_ffn_dominates_405b(self):
        """FFN holds ~80% of 405B's parameters, so FP8 saves ~40%."""
        cfg = llama3_405b_config()
        assert weight_bytes(cfg) < 1.3 * cfg.param_count


class TestValidation:
    def test_mfu_validation(self):
        with pytest.raises(ValueError):
            mfu(1e18, 0, 8, 800e12)

    def test_gemm_validation(self):
        with pytest.raises(ValueError):
            gemm_flops(llama3_405b_config(), -1)
