"""Serving metrics aggregation (TTFT / TTIT / cache hit rates)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serving.request import TurnRecord


@dataclass
class ServingMetrics:
    """Rolling aggregate over completed turns.

    TTFT/TTIT samples come from the analytic simulator (seconds); token and
    cache-hit accounting comes from the numeric engine's turn records.
    """

    ttft_samples: list[float] = field(default_factory=list)
    ttit_samples: list[float] = field(default_factory=list)
    turns: list[TurnRecord] = field(default_factory=list)

    def record_turn(self, turn: TurnRecord, *, ttft: float | None = None, ttit: float | None = None) -> None:
        self.turns.append(turn)
        if ttft is not None:
            self.ttft_samples.append(float(ttft))
        if ttit is not None:
            self.ttit_samples.append(float(ttit))

    # ------------------------------- views ------------------------------ #

    @property
    def total_prompt_tokens(self) -> int:
        return sum(t.prompt_tokens for t in self.turns)

    @property
    def total_generated_tokens(self) -> int:
        return sum(t.response_tokens for t in self.turns)

    @property
    def mean_cache_hit_rate(self) -> float:
        """Average of ``P / (T + P)`` over turns (1 - miss rate)."""
        if not self.turns:
            return 0.0
        return float(np.mean([1.0 - t.miss_rate for t in self.turns]))

    def algo_counts(self) -> dict[str, int]:
        """Prefill algorithm selection frequencies."""
        counts: dict[str, int] = {}
        for t in self.turns:
            counts[t.algo] = counts.get(t.algo, 0) + 1
        return counts

    def percentile_ttft(self, q: float) -> float:
        if not self.ttft_samples:
            raise ValueError("no TTFT samples recorded")
        return float(np.percentile(self.ttft_samples, q))

    def percentile_ttit(self, q: float) -> float:
        if not self.ttit_samples:
            raise ValueError("no TTIT samples recorded")
        return float(np.percentile(self.ttit_samples, q))

    def summary(self) -> str:
        lines = [
            f"turns: {len(self.turns)}",
            f"prompt tokens: {self.total_prompt_tokens}",
            f"generated tokens: {self.total_generated_tokens}",
            f"mean cache hit rate: {self.mean_cache_hit_rate:.3f}",
            f"algo counts: {self.algo_counts()}",
        ]
        if self.ttft_samples:
            lines.append(f"p50 TTFT: {self.percentile_ttft(50):.3f}s")
        if self.ttit_samples:
            lines.append(f"p50 TTIT: {self.percentile_ttit(50) * 1e3:.2f}ms")
        return "\n".join(lines)
