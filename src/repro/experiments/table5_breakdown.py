"""Table 5: per-ring-iteration time breakdown at 2.5% and 10% miss rate.

Reports SendRecv and partial-ATTN per ring iteration (per layer) for both
variants plus pass-Q's All2All — the measurements that explain the
Table 4 crossover: at 2.5% the exposed pass-KV communication
``(N-1) * (SendRecv - ATTN)`` exceeds pass-Q's All2All, flipping the
winner to pass-Q.
"""

from __future__ import annotations

from repro.core.heuristics import RingAlgo
from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config
from repro.perf.hardware import HostSpec, gtt_host
from repro.perf.latency import LatencySimulator
from repro.workloads.traces import TABLE4_RANKS, TABLE5_POINTS

#: Paper Table 5 (us): miss -> {algo: (sendrecv, attn, all2all)}
PAPER_TABLE5 = {
    0.025: {"pass-kv": (627.0, 414.0, None), "pass-q": (166.0, 414.0, 424.0)},
    0.100: {"pass-kv": (631.0, 1608.0, None), "pass-q": (544.0, 1608.0, 1023.0)},
}


def run(host: HostSpec | None = None) -> ExperimentResult:
    host = host if host is not None else gtt_host()
    cfg = llama3_405b_config()
    sim = LatencySimulator(cfg, host)
    n = TABLE4_RANKS

    res = ExperimentResult(
        experiment_id="Table 5",
        title=f"Ring-iteration breakdown (us), P+T=128000, CP{n}",
        headers=[
            "miss%", "algo", "SendRecv", "ATTN", "All2All",
            "exposed ring comm", "paper SendRecv", "paper All2All",
        ],
    )
    for p, t in TABLE5_POINTS:
        rate = t / (t + p)
        for algo in (RingAlgo.PASS_KV, RingAlgo.PASS_Q):
            r = sim.cp_prefill(t, p, n_ranks=n, algo=algo)
            paper = PAPER_TABLE5[round(rate, 3)][algo.value]
            exposed = (n - 1) * max(0.0, r.sendrecv_per_iter - r.attn_per_iter)
            res.add_row(
                100 * rate,
                algo.value,
                r.sendrecv_per_iter * 1e6,
                r.attn_per_iter * 1e6,
                (r.all2all / cfg.n_layers * 1e6) if algo is RingAlgo.PASS_Q else 0.0,
                exposed * 1e6,
                paper[0],
                paper[2] if paper[2] is not None else 0.0,
            )
    res.notes.append(
        "At 2.5% miss the exposed pass-KV ring communication per layer "
        "exceeds pass-Q's All2All -> pass-Q wins; at 10% SendRecv hides "
        "under ATTN -> pass-KV wins (paper Section 4.2.4)."
    )
    return res
