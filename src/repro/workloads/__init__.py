"""Synthetic workload generation.

The paper's evaluation sweeps (context lengths 2K-1M, KV-cache miss rates
1-100%, multi-turn conversations) need reproducible inputs. This package
generates them:

- :mod:`repro.workloads.generator` — deterministic token/prompt generators
  and multi-turn conversation scripts.
- :mod:`repro.workloads.traces` — the parameter grids behind each table
  and figure, shared by the benchmark harness and EXPERIMENTS.md.
"""

from repro.workloads.generator import ConversationScript, WorkloadGenerator
from repro.workloads.replay import (
    replay_scripts_sequential,
    script_to_arrivals,
    submit_scripts_to_runtime,
)
from repro.workloads.traces import (
    FIG6_CONTEXT_LENGTHS,
    FIG8_CONTEXT_LENGTHS,
    TABLE4_SWEEP,
    table4_rows,
)

__all__ = [
    "ConversationScript",
    "FIG6_CONTEXT_LENGTHS",
    "FIG8_CONTEXT_LENGTHS",
    "TABLE4_SWEEP",
    "WorkloadGenerator",
    "replay_scripts_sequential",
    "script_to_arrivals",
    "submit_scripts_to_runtime",
    "table4_rows",
]
