"""Structured latency breakdowns mirroring the paper's Tables 5 and 8."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PrefillLatency:
    """TTFT decomposition for one prefill round.

    All times in seconds. Per-iteration fields are per transformer layer and
    per ring step, matching Table 5's reporting granularity.

    Attributes:
        algo: ``"pass-kv"``, ``"pass-q"``, or ``"tp"``.
        n_ranks: CP ranks (or TP nodes for the baseline).
        gemm: total linear-layer time.
        attn: total attention compute time (the rank's share).
        sendrecv_per_iter: one ring step's SendRecv time for one layer.
        attn_per_iter: one ring step's partial-attention time for one layer.
        exposed_comm: ring communication not hidden under attention.
        all2all: pass-Q output-restore All2All total (0 for pass-KV).
        allreduce: TP baseline's exposed AllReduce total (0 for CP).
        overhead: fixed per-layer overheads (norms, RoPE, launches).
        total: TTFT.
    """

    algo: str
    n_ranks: int
    gemm: float
    attn: float
    sendrecv_per_iter: float
    attn_per_iter: float
    exposed_comm: float
    all2all: float
    allreduce: float
    overhead: float
    total: float

    @property
    def ttft(self) -> float:
        """Alias for ``total`` (time-to-first-token)."""
        return self.total


@dataclass(frozen=True)
class DecodeLatency:
    """TTIT decomposition for one decode step (Table 8's granularity).

    All times in seconds unless noted. Per-op fields are per layer.

    Attributes:
        algo: ``"pass-q"`` or ``"tp"``.
        n_ranks: CP ranks (or TP nodes).
        effective_context: context length each attention kernel sees.
        weights: HBM weight-streaming time (memory-bound linear layers).
        attn_op: one partial-attention kernel's time.
        attn_ring: the whole ring loop's attention time for one layer.
        sendrecv: per-layer ring SendRecv total (exposed in decode).
        all2all: per-layer output-restore All2All.
        whole_attn: per-layer total attention path (Table 8 "Whole pass-Q").
        overhead: fixed per-layer decode overheads.
        total: TTIT.
    """

    algo: str
    n_ranks: int
    effective_context: int
    weights: float
    attn_op: float
    attn_ring: float
    sendrecv: float
    all2all: float
    whole_attn: float
    overhead: float
    total: float

    @property
    def ttit(self) -> float:
        """Alias for ``total`` (time-to-incremental-token)."""
        return self.total
