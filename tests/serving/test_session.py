"""Tests for the multi-turn chat session driver."""

import numpy as np
import pytest

from repro.core.engine import ContextParallelEngine
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel
from repro.serving.session import ChatSession


@pytest.fixture(scope="module")
def model():
    return LlamaModel(tiny_config(), seed=21)


class TestChatSession:
    def test_turn_records(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        session = ChatSession(engine, seq_id=0)
        rec = session.send(np.arange(12) % model.config.vocab_size, max_new_tokens=3)
        assert rec.prompt_tokens == 12
        assert rec.cached_tokens == 0
        assert rec.response_tokens == 3
        assert rec.miss_rate == 1.0
        assert session.context_length == 15

    def test_second_turn_is_partial_prefill(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        session = ChatSession(engine, seq_id=0)
        session.send(np.arange(20) % model.config.vocab_size, max_new_tokens=2)
        rec = session.send(np.arange(4) % model.config.vocab_size, max_new_tokens=1)
        assert rec.cached_tokens == 22
        assert rec.miss_rate == pytest.approx(4 / 26)

    def test_generation_matches_single_device_greedy(self, model):
        """CP greedy decoding must produce the same token ids as a
        single-device greedy loop — the strongest losslessness check."""
        engine = ContextParallelEngine(model, world_size=3)
        session = ChatSession(engine, seq_id=0)
        prompt = (np.arange(10) * 3) % model.config.vocab_size
        rec = session.send(prompt, max_new_tokens=4)

        # single-device greedy loop
        history = list(prompt)
        expected = []
        for _ in range(4):
            logits = model.forward(np.array(history))
            tok = int(np.argmax(logits[-1]))
            expected.append(tok)
            history.append(tok)
        assert rec.generated == expected

    def test_history_tracks_everything(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        session = ChatSession(engine, seq_id=5)
        session.send(np.array([1, 2, 3]), max_new_tokens=2)
        session.send(np.array([4]), max_new_tokens=1)
        assert len(session.history) == 3 + 2 + 1 + 1
        assert session.context_length == 7

    def test_two_sessions_one_engine(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        a = ChatSession(engine, seq_id=0)
        b = ChatSession(engine, seq_id=1)
        a.send(np.arange(8), max_new_tokens=1)
        b.send(np.arange(5), max_new_tokens=1)
        assert a.context_length == 9
        assert b.context_length == 6

    def test_close_releases_cache(self, model):
        engine = ContextParallelEngine(model, world_size=2)
        session = ChatSession(engine, seq_id=0)
        session.send(np.arange(6), max_new_tokens=1)
        session.close()
        assert engine.context_length(0) == 0
