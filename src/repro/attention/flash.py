"""Blocked online-softmax attention with LSE output (flash-style).

This kernel mirrors the contract of FlashAttention-3 / Flash-Decoding that
the production system uses: it walks the key/value tensor in blocks, keeps a
running online-softmax state per (query token, head), and returns both the
attention output ``O`` and the log-sum-exp ``LSE``.

The blocked structure is not a performance affectation — it is load-bearing
for the reproduction:

- It proves that the library's merge attention (:mod:`repro.core.merge`,
  paper Appendix B) composes *exactly*: a ring algorithm that merges K
  partial results from K disjoint KV shards must produce bit-compatible
  output with a single monolithic kernel call, because both reduce through
  the same online-softmax recurrence.
- ``num_kv_splits`` emulates Flash-Decoding's split-KV execution (the paper
  uses 256 splits for decode) by computing independent partials per split
  and merging them, again through the same recurrence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attention.gqa import validate_gqa_shapes
from repro.attention.masks import attention_mask
from repro.attention.online_softmax import OnlineSoftmaxState
from repro.attention.reference import reference_attention_with_lse


@dataclass(frozen=True)
class AttentionResult:
    """Partial or final attention result: output plus log-sum-exp.

    Attributes:
        out: ``[T, NH, DH]`` attention output.
        lse: ``[T, NH]`` log-sum-exp of the (scaled, masked) scores.
    """

    out: np.ndarray
    lse: np.ndarray

    @property
    def tokens(self) -> int:
        return self.out.shape[0]

    def astype(self, dtype) -> "AttentionResult":
        return AttentionResult(self.out.astype(dtype), self.lse.astype(dtype))


def flash_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    *,
    q_pos: np.ndarray | None = None,
    k_pos: np.ndarray | None = None,
    q_seq: np.ndarray | None = None,
    k_seq: np.ndarray | None = None,
    causal: bool = True,
    scale: float | None = None,
    block_size: int = 128,
    num_kv_splits: int = 1,
    mask_fn=None,
) -> AttentionResult:
    """Blocked exact GQA attention returning :class:`AttentionResult`.

    Args:
        q, k, v: GQA tensors ``[Tq, NH, DH]`` / ``[Tk, NKV, DH]``.
        q_pos, k_pos, q_seq, k_seq: token coordinates (see
            :mod:`repro.attention.masks`).
        causal: apply the causal predicate.
        scale: score scale, default ``1/sqrt(DH)``.
        block_size: KV block length for the online-softmax sweep.
        num_kv_splits: emulate Flash-Decoding split-KV: the KV range is cut
            into this many independent partials, merged at the end. The
            result is exact for any split count.
        mask_fn: optional mask override in absolute coordinates (see
            :func:`repro.attention.reference.reference_attention_with_lse`);
            enables windowed/sink attention through the same kernel.

    Returns:
        Exact ``(O, LSE)`` for the full masked attention.
    """
    tq, tk, nh, _ = validate_gqa_shapes(q, k, v)
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    if num_kv_splits <= 0:
        raise ValueError(f"num_kv_splits must be positive, got {num_kv_splits}")
    if q_pos is None:
        q_pos = np.arange(tq, dtype=np.int64)
    if k_pos is None:
        k_pos = np.arange(tk, dtype=np.int64)
    q_pos = np.asarray(q_pos)
    k_pos = np.asarray(k_pos)

    if tk == 0 or tq == 0:
        return AttentionResult(
            out=np.zeros((tq, nh, q.shape[-1]), dtype=np.float64),
            lse=np.full((tq, nh), -np.inf, dtype=np.float64),
        )

    split_edges = np.linspace(0, tk, num_kv_splits + 1, dtype=np.int64)
    state = OnlineSoftmaxState(out_shape=(tq, nh, q.shape[-1]), lse_shape=(tq, nh))
    for split in range(num_kv_splits):
        lo, hi = int(split_edges[split]), int(split_edges[split + 1])
        partial = _attend_range(
            q, k, v, q_pos, k_pos, q_seq, k_seq, causal, scale, block_size, lo, hi,
            mask_fn,
        )
        state.update(partial.out, partial.lse)
    out, lse = state.finalize()
    return AttentionResult(out=out, lse=lse)


def _attend_range(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    q_pos: np.ndarray,
    k_pos: np.ndarray,
    q_seq: np.ndarray | None,
    k_seq: np.ndarray | None,
    causal: bool,
    scale: float | None,
    block_size: int,
    lo: int,
    hi: int,
    mask_fn=None,
) -> AttentionResult:
    """Online-softmax sweep over KV storage slice ``[lo, hi)``."""
    tq, nh = q.shape[0], q.shape[1]
    state = OnlineSoftmaxState(out_shape=(tq, nh, q.shape[-1]), lse_shape=(tq, nh))
    for start in range(lo, hi, block_size):
        stop = min(start + block_size, hi)
        k_seq_blk = None if k_seq is None else np.asarray(k_seq)[start:stop]
        out_blk, lse_blk = reference_attention_with_lse(
            q,
            k[start:stop],
            v[start:stop],
            q_pos=q_pos,
            k_pos=k_pos[start:stop],
            q_seq=q_seq,
            k_seq=k_seq_blk,
            causal=causal,
            scale=scale,
            mask_fn=mask_fn,
        )
        state.update(out_blk, lse_blk)
    out, lse = state.finalize()
    return AttentionResult(out=out, lse=lse)
