"""Tests for merge attention (Appendix B, Eq. 4)."""

import numpy as np
import pytest

from repro.attention.flash import AttentionResult
from repro.attention.reference import reference_attention_with_lse
from repro.core.merge import merge_attention, merge_partials

from helpers import make_qkv


class TestMergePartials:
    def test_merge_disjoint_kv_chunks_equals_full(self, rng):
        """The paper's Equation (4): merging per-chunk partials is exact."""
        q, k, v = make_qkv(rng, 8, 32)
        kpos = np.arange(32)
        qpos = np.arange(24, 32)
        full_out, full_lse = reference_attention_with_lse(q, k, v, q_pos=qpos, k_pos=kpos)

        partials = []
        for lo in range(0, 32, 9):
            hi = min(lo + 9, 32)
            o, l = reference_attention_with_lse(
                q, k[lo:hi], v[lo:hi], q_pos=qpos, k_pos=kpos[lo:hi]
            )
            partials.append(AttentionResult(out=o, lse=l))
        merged = merge_partials(partials)
        np.testing.assert_allclose(merged.out, full_out, atol=1e-12)
        np.testing.assert_allclose(merged.lse, full_lse, atol=1e-12)

    def test_single_partial_identity(self, rng):
        q, k, v = make_qkv(rng, 4, 4)
        o, l = reference_attention_with_lse(q, k, v)
        merged = merge_partials([AttentionResult(out=o, lse=l)])
        np.testing.assert_allclose(merged.out, o, atol=1e-14)
        np.testing.assert_allclose(merged.lse, l, atol=1e-14)

    def test_empty_partials_are_identity(self, rng):
        q, k, v = make_qkv(rng, 4, 4)
        o, l = reference_attention_with_lse(q, k, v)
        empty = AttentionResult(
            out=np.zeros_like(o), lse=np.full_like(l, -np.inf)
        )
        merged = merge_partials([empty, AttentionResult(out=o, lse=l), empty])
        np.testing.assert_allclose(merged.out, o, atol=1e-12)
        np.testing.assert_allclose(merged.lse, l, atol=1e-12)

    def test_all_empty_partials(self):
        empty = AttentionResult(out=np.zeros((2, 2, 4)), lse=np.full((2, 2), -np.inf))
        merged = merge_partials([empty, empty])
        assert np.all(merged.out == 0)
        assert np.all(np.isneginf(merged.lse))

    def test_permutation_invariance(self, rng):
        q, k, v = make_qkv(rng, 6, 30)
        kpos = np.arange(30)
        qpos = np.arange(24, 30)
        partials = []
        for lo in range(0, 30, 6):
            o, l = reference_attention_with_lse(
                q, k[lo : lo + 6], v[lo : lo + 6], q_pos=qpos, k_pos=kpos[lo : lo + 6]
            )
            partials.append(AttentionResult(out=o, lse=l))
        a = merge_partials(partials)
        b = merge_partials(partials[::-1])
        np.testing.assert_allclose(a.out, b.out, atol=1e-12)
        np.testing.assert_allclose(a.lse, b.lse, atol=1e-12)

    def test_errors(self):
        with pytest.raises(ValueError):
            merge_partials([])
        a = AttentionResult(out=np.zeros((2, 2, 4)), lse=np.zeros((2, 2)))
        b = AttentionResult(out=np.zeros((3, 2, 4)), lse=np.zeros((3, 2)))
        with pytest.raises(ValueError):
            merge_partials([a, b])


class TestMergeAttentionWrapper:
    def test_array_interface(self, rng):
        q, k, v = make_qkv(rng, 4, 16)
        kpos = np.arange(16)
        qpos = np.arange(12, 16)
        full_out, full_lse = reference_attention_with_lse(q, k, v, q_pos=qpos, k_pos=kpos)
        o1, l1 = reference_attention_with_lse(q, k[:8], v[:8], q_pos=qpos, k_pos=kpos[:8])
        o2, l2 = reference_attention_with_lse(q, k[8:], v[8:], q_pos=qpos, k_pos=kpos[8:])
        out, lse = merge_attention([o1, o2], [l1, l2])
        np.testing.assert_allclose(out, full_out, atol=1e-12)
        np.testing.assert_allclose(lse, full_lse, atol=1e-12)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            merge_attention([np.zeros((1, 1, 2))], [])
