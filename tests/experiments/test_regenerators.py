"""Smoke + claim tests for every experiment regenerator.

The detailed quantitative claims live in the benchmark harness; these
tests pin the structural properties (row counts, column presence, headline
claims) so a broken regenerator fails fast in the unit suite.
"""

import pytest

from repro.experiments import (
    ablation_allgather,
    ablation_sharding,
    fig6_prefill_scaling,
    fig7_cp_vs_tp,
    fig8_million_token,
    table2_comm,
    table4_fig9_partial_prefill,
    table5_breakdown,
    table6_ttft_ttit,
    table7_parallelism,
    table8_decode_attention,
)
from repro.experiments.table4_fig9_partial_prefill import crossover_miss_rate
from repro.perf.hardware import gti_host


class TestTable2:
    def test_ratio_16x(self):
        res = table2_comm.run()
        assert res.rows[0][3] == pytest.approx(16.0)


class TestFig6:
    def test_gtt_panel_shape(self):
        res = fig6_prefill_scaling.run()
        assert res.experiment_id == "Figure 6a"
        assert len(res.rows) == 8
        assert res.headers == ["context", "CP1", "CP2", "CP4", "CP8"]

    def test_gti_panel_ranks(self):
        res = fig6_prefill_scaling.run(gti_host())
        assert res.experiment_id == "Figure 6b"
        assert res.headers[-1] == "CP4"

    def test_latency_monotone_in_context(self):
        res = fig6_prefill_scaling.run()
        for col in res.headers[1:]:
            vals = res.column(col)
            assert vals == sorted(vals)


class TestFig7:
    def test_cp_dominates(self):
        res = fig7_cp_vs_tp.run()
        for row in res.rows[1:]:
            assert row[4] > row[3]  # CP ratio > TP ratio


class TestFig8:
    def test_cp16_faster_than_cp8(self):
        res = fig8_million_token.run()
        for row in res.rows:
            assert row[2] < row[1]

    def test_mfu_band(self):
        res = fig8_million_token.run()
        mfus = res.column("CP16 MFU")
        assert all(0.4 < m < 0.8 for m in mfus)


class TestTable4Fig9:
    def test_rows_cover_sweep(self):
        res = table4_fig9_partial_prefill.run()
        assert len(res.rows) == 14

    def test_crossover_helper(self):
        res = table4_fig9_partial_prefill.run()
        assert 0.02 < crossover_miss_rate(res) < 0.06

    def test_alg5_columns_valid(self):
        res = table4_fig9_partial_prefill.run()
        for v in res.column("Alg5"):
            assert v in ("pass-kv", "pass-q")


class TestTable5:
    def test_four_rows(self):
        res = table5_breakdown.run()
        assert len(res.rows) == 4

    def test_attn_equal_between_variants(self):
        """ATTN per iteration is algorithm-independent (same compute)."""
        res = table5_breakdown.run()
        by_rate = {}
        for row in res.rows:
            by_rate.setdefault(row[0], []).append(row[3])
        for rate, attns in by_rate.items():
            assert attns[0] == pytest.approx(attns[1])


class TestTable6:
    def test_cp_halves_long_prefill(self):
        res = table6_ttft_ttit.run()
        long_row = [r for r in res.rows if r[0] == 131072][0]
        assert long_row[1] / long_row[3] == pytest.approx(2.0, abs=0.3)


class TestTable7:
    def test_all_configs_present(self):
        res = table7_parallelism.run()
        labels = res.column("config")
        assert labels == ["CP1+TP8", "CP2+TP8", "TP16", "CP4+TP8", "TP32"]


class TestTable8:
    def test_six_rows(self):
        res = table8_decode_attention.run()
        assert len(res.rows) == 6

    def test_effective_context_divides(self):
        res = table8_decode_attention.run()
        for row in res.rows:
            assert row[3] == row[0] // row[2]


class TestAblations:
    def test_sharding_balanced_wins(self):
        res = ablation_sharding.run(length=8192, rank_counts=[4])
        (_, lb, striped, nv, _, _) = res.rows[0]
        assert lb < nv
        assert striped < nv

    def test_allgather_never_faster(self):
        res = ablation_allgather.run()
        for row in res.rows:
            assert row[2] >= row[1]

    def test_traffic_parity(self):
        ring_bytes, ag_bytes = ablation_allgather.traffic_check(world=3, tokens=30)
        assert ring_bytes == ag_bytes
