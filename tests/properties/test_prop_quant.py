"""Property-based tests: row-wise quantization invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.quant import dequantize_rowwise, quantize_rowwise

SETTINGS = dict(max_examples=60, deadline=None)


@st.composite
def weight_matrix(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    rows = draw(st.integers(1, 20))
    cols = draw(st.integers(1, 40))
    scale = draw(st.floats(1e-6, 1e6))
    rng = np.random.default_rng(seed)
    return rng.standard_normal((rows, cols)) * scale


class TestQuantProperties:
    @given(weight_matrix())
    @settings(**SETTINGS)
    def test_error_bounded_by_half_step(self, w):
        codes, scales = quantize_rowwise(w)
        back = dequantize_rowwise(codes, scales)
        bound = 0.5 * scales[:, None] + 1e-12 * np.abs(w).max()
        assert np.all(np.abs(back - w) <= bound)

    @given(weight_matrix())
    @settings(**SETTINGS)
    def test_idempotent(self, w):
        """Quantizing a dequantized matrix is a fixed point."""
        codes, scales = quantize_rowwise(w)
        back = dequantize_rowwise(codes, scales)
        codes2, scales2 = quantize_rowwise(back)
        np.testing.assert_array_equal(codes, codes2)
        np.testing.assert_allclose(scales, scales2, rtol=1e-12)

    @given(weight_matrix(), st.floats(1e-3, 1e3))
    @settings(**SETTINGS)
    def test_scale_equivariance(self, w, c):
        """quantize(c * w) has codes equal to quantize(w)'s and scales
        multiplied by c."""
        codes_a, scales_a = quantize_rowwise(w)
        codes_b, scales_b = quantize_rowwise(c * w)
        np.testing.assert_array_equal(codes_a, codes_b)
        np.testing.assert_allclose(scales_b, c * scales_a, rtol=1e-9)

    @given(weight_matrix())
    @settings(**SETTINGS)
    def test_sign_preserved(self, w):
        codes, _ = quantize_rowwise(w)
        nonzero = codes != 0
        assert np.all(np.sign(codes[nonzero]) == np.sign(w[nonzero]))
