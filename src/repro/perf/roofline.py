"""Message sizes and overlap predicates (paper §3.4, Tables 2-3, Eqs. 1-3).

These closed forms decide *which tensor to circulate* and *whether the ring
communication hides under attention compute*. They are shared by the
heuristics (:mod:`repro.core.heuristics`), the latency simulator
(:mod:`repro.perf.latency`) and the Table 2 benchmark.
"""

from __future__ import annotations

from repro.model.config import ModelConfig


def q_bytes(config: ModelConfig, new_tokens: int, element_bytes: float = 2.0) -> float:
    """Query embedding bytes for ``T`` new tokens: ``T * D * e`` (Table 3)."""
    return new_tokens * config.model_dim * element_bytes


def kv_bytes(
    config: ModelConfig,
    new_tokens: int,
    cached_tokens: int = 0,
    element_bytes: float = 2.0,
) -> float:
    """Key+value embedding bytes for the full context:
    ``2 * (P + T) * D * (NKV / NH) * e`` (Table 3)."""
    total = new_tokens + cached_tokens
    return 2.0 * total * config.model_dim * (config.n_kv_heads / config.n_heads) * element_bytes


def cp_attn_message_bytes(
    config: ModelConfig,
    new_tokens: int,
    cached_tokens: int,
    *,
    element_bytes: float = 2.0,
) -> float:
    """Bytes the cheaper ring variant circulates per layer:
    ``min(Q bytes, KV bytes)``."""
    return min(
        q_bytes(config, new_tokens, element_bytes),
        kv_bytes(config, new_tokens, cached_tokens, element_bytes),
    )


def tp_block_comm_bytes(config: ModelConfig, tokens: int, element_bytes: float = 2.0) -> float:
    """TP communication per transformer block: two AllReduces of the
    activation, ``2 * T * NH * DH * e`` (Table 2)."""
    return 2.0 * tokens * config.model_dim * element_bytes


def cp_block_comm_bytes(
    config: ModelConfig,
    new_tokens: int,
    cached_tokens: int = 0,
    element_bytes: float = 2.0,
) -> float:
    """CP communication per transformer block (pass-KV): the KV tensors,
    ``T * NKV * DH * e`` each for K and V (Table 2 lists the aggregate as
    ``T * NKV * DH`` elements; we count K and V explicitly)."""
    return kv_bytes(config, new_tokens, cached_tokens, element_bytes)


def can_hide_passkv_comm(
    config: ModelConfig,
    new_tokens: int,
    n_ranks: int,
    *,
    compute_flops: float,
    bandwidth: float,
    element_bytes: float = 2.0,
) -> bool:
    """Equation (2): pass-KV SendRecv hides under attention iff
    ``T >= N * C * NKV * e / (2 * NH * BW)``."""
    threshold = (
        n_ranks
        * compute_flops
        * config.n_kv_heads
        * element_bytes
        / (2.0 * config.n_heads * bandwidth)
    )
    return new_tokens >= threshold


def can_hide_passq_comm(
    config: ModelConfig,
    total_context: int,
    n_ranks: int,
    *,
    compute_flops: float,
    bandwidth: float,
    element_bytes: float = 2.0,
) -> bool:
    """Equation (3): pass-Q ring SendRecv hides under attention iff
    ``(T + P) >= N * e * C / (4 * BW)``."""
    threshold = n_ranks * element_bytes * compute_flops / (4.0 * bandwidth)
    return total_context >= threshold


def all2all_bytes(
    config: ModelConfig, new_tokens_per_rank: int, n_ranks: int, element_bytes: float = 2.0
) -> float:
    """pass-Q output-restore All2All egress per rank (Appendix C):
    ``(N - 1)`` partials of ``(D + 1)`` values per token (output + LSE)."""
    return (n_ranks - 1) * new_tokens_per_rank * (config.model_dim + 1) * element_bytes
