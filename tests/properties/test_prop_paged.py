"""Property-based tests: paged allocator conservation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.kvcache.paged import OutOfBlocksError, PagedAllocator


class AllocatorMachine(RuleBasedStateMachine):
    """Stateful test: blocks are conserved under any append/release order."""

    def __init__(self):
        super().__init__()
        self.alloc = PagedAllocator(num_blocks=16, block_size=8)
        self.model_tokens: dict[tuple, int] = {}

    @rule(stream=st.integers(0, 5), n=st.integers(0, 30))
    def append(self, stream, n):
        key = (stream,)
        try:
            self.alloc.append(key, n)
            self.model_tokens[key] = self.model_tokens.get(key, 0) + n
        except OutOfBlocksError:
            pass  # state must be unchanged; invariants verify

    @rule(stream=st.integers(0, 5))
    def release(self, stream):
        key = (stream,)
        self.alloc.release(key)
        self.model_tokens.pop(key, None)

    @invariant()
    def tokens_match_model(self):
        for key, tokens in self.model_tokens.items():
            assert self.alloc.stream_tokens(key) == tokens

    @invariant()
    def blocks_conserved(self):
        assert self.alloc.free_blocks + self.alloc.used_blocks == 16

    @invariant()
    def used_blocks_cover_tokens(self):
        for key, tokens in self.model_tokens.items():
            needed = -(-tokens // 8)
            # block count for the stream is exactly ceil(tokens / block)
            assert self.alloc.stream_tokens(key) <= needed * 8

    @invariant()
    def free_tokens_consistent(self):
        free = self.alloc.free_tokens()
        total_stored = sum(self.model_tokens.values())
        assert free >= self.alloc.free_blocks * 8
        assert total_stored + free >= 16 * 8 - 8  # slack bounded per stream


TestAllocatorMachine = AllocatorMachine.TestCase


class TestAppendProperties:
    @given(st.lists(st.integers(1, 10), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_chunked_appends_equal_bulk(self, chunks):
        total = sum(chunks)
        a = PagedAllocator(num_blocks=100, block_size=4)
        for c in chunks:
            a.append(("s",), c)
        b = PagedAllocator(num_blocks=100, block_size=4)
        b.append(("s",), total)
        assert a.stream_tokens(("s",)) == b.stream_tokens(("s",))
        assert a.used_blocks == b.used_blocks
