"""Ablation: ring pass-KV vs all-gather pass-KV exposure."""

from repro.experiments import ablation_allgather


def bench_ablation_allgather(benchmark, paper_table):
    result = benchmark(ablation_allgather.run)
    paper_table(benchmark, result)
    for row in result.rows:
        ctx, ring_ttft, ag_ttft, slowdown_pct, exposed = row
        # all-gather is never faster: its communication is fully exposed
        assert ag_ttft >= ring_ttft - 1e-9
        assert exposed > 0


def bench_traffic_parity(benchmark):
    """Numeric check: ring and all-gather move identical byte volumes."""
    ring_bytes, ag_bytes = benchmark(ablation_allgather.traffic_check)
    assert ring_bytes == ag_bytes


if __name__ == "__main__":
    print(ablation_allgather.run().render())
