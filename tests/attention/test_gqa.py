"""Tests for GQA head bookkeeping."""

import numpy as np
import pytest

from repro.attention.gqa import expand_kv_heads, kv_head_for_query_head, validate_gqa_shapes


class TestKvHeadMapping:
    def test_llama3_405b_grouping(self):
        """128 query heads over 8 KV heads: groups of 16."""
        assert kv_head_for_query_head(0, 128, 8) == 0
        assert kv_head_for_query_head(15, 128, 8) == 0
        assert kv_head_for_query_head(16, 128, 8) == 1
        assert kv_head_for_query_head(127, 128, 8) == 7

    def test_mha_identity(self):
        for h in range(8):
            assert kv_head_for_query_head(h, 8, 8) == h

    def test_mqa_all_zero(self):
        for h in range(8):
            assert kv_head_for_query_head(h, 8, 1) == 0

    def test_invalid_grouping(self):
        with pytest.raises(ValueError):
            kv_head_for_query_head(0, 10, 3)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            kv_head_for_query_head(8, 8, 2)


class TestExpandKvHeads:
    def test_repeats_groups(self):
        kv = np.arange(2 * 2 * 3, dtype=float).reshape(2, 2, 3)
        out = expand_kv_heads(kv, 6)
        assert out.shape == (2, 6, 3)
        # query heads 0-2 share kv head 0; 3-5 share kv head 1
        for h in range(3):
            np.testing.assert_array_equal(out[:, h], kv[:, 0])
            np.testing.assert_array_equal(out[:, 3 + h], kv[:, 1])

    def test_identity_when_equal(self):
        kv = np.random.default_rng(0).standard_normal((4, 3, 5))
        np.testing.assert_array_equal(expand_kv_heads(kv, 3), kv)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            expand_kv_heads(np.zeros((1, 3, 2)), 8)


class TestValidateShapes:
    def test_valid(self):
        q = np.zeros((5, 8, 16))
        k = np.zeros((7, 2, 16))
        assert validate_gqa_shapes(q, k, k) == (5, 7, 8, 2)

    def test_kv_mismatch(self):
        with pytest.raises(ValueError):
            validate_gqa_shapes(np.zeros((5, 8, 16)), np.zeros((7, 2, 16)), np.zeros((6, 2, 16)))

    def test_head_dim_mismatch(self):
        with pytest.raises(ValueError):
            validate_gqa_shapes(np.zeros((5, 8, 16)), np.zeros((7, 2, 8)), np.zeros((7, 2, 8)))

    def test_bad_grouping(self):
        with pytest.raises(ValueError):
            validate_gqa_shapes(np.zeros((5, 8, 16)), np.zeros((7, 3, 16)), np.zeros((7, 3, 16)))

    def test_wrong_rank(self):
        with pytest.raises(ValueError):
            validate_gqa_shapes(np.zeros((5, 8)), np.zeros((7, 2, 16)), np.zeros((7, 2, 16)))
