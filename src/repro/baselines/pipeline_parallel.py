"""Pipeline-parallel baseline cost model (paper §1's contrast).

The paper's first bullet for CP: *"CP distributes computation across
multiple GPUs in order to reduce latency, in contrast with pipeline
parallelization (PP) that improves throughput but not latency."* This
module prices PP so the contrast is quantitative:

- layers split into ``S`` stages (one host each);
- a single request's tokens flow through all stages sequentially, so
  **TTFT barely improves** (per-layer work is unchanged; only activation
  hand-offs between stages are added);
- with ``M`` micro-batches in flight, steady-state **throughput**
  approaches ``S``x a single host — PP's actual win.

Used by the extension experiment ``pp_vs_cp`` to regenerate the paper's
latency-vs-throughput argument as a table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.config import ModelConfig
from repro.perf.hardware import HostSpec
from repro.perf.latency import LatencySimulator


@dataclass(frozen=True)
class PipelineLatency:
    """One pipeline-parallel prefill estimate.

    Attributes:
        stages: pipeline stages (hosts).
        micro_batches: micro-batches used to fill the pipeline.
        ttft: time to finish one request's prefill (latency).
        steady_throughput: requests/s in the saturated pipeline.
        bubble_fraction: idle fraction of the pipeline for this schedule
            (GPipe bubble ``(S - 1) / (M + S - 1)``).
    """

    stages: int
    micro_batches: int
    ttft: float
    steady_throughput: float
    bubble_fraction: float


def pp_prefill(
    config: ModelConfig,
    host: HostSpec,
    tokens: int,
    *,
    stages: int,
    micro_batches: int = 1,
    element_bytes: float = 2.0,
) -> PipelineLatency:
    """Latency/throughput model for PP prefill of one request.

    One request cannot overlap with itself: its activations visit every
    stage in order, so TTFT ~= single-host compute plus ``S - 1``
    activation hand-offs. Throughput (with enough micro-batches from
    *other* requests) approaches ``S / t_stage``.
    """
    if stages < 1:
        raise ValueError(f"stages must be >= 1, got {stages}")
    if micro_batches < 1:
        raise ValueError(f"micro_batches must be >= 1, got {micro_batches}")
    if config.n_layers % stages != 0:
        raise ValueError(f"{config.n_layers} layers not divisible into {stages} stages")

    sim = LatencySimulator(config, host, element_bytes=element_bytes)
    single_host = sim.tp_prefill(tokens, n_nodes=1).total
    stage_time = single_host / stages

    # activation hand-off between consecutive stages: [T, D] once per boundary
    handoff_bytes = tokens * config.model_dim * element_bytes
    handoff = host.message_latency + handoff_bytes / host.ring_bandwidth
    ttft = single_host + (stages - 1) * handoff

    bubble = (stages - 1) / (micro_batches + stages - 1)
    steady_throughput = (1.0 - bubble) * stages / single_host

    return PipelineLatency(
        stages=stages,
        micro_batches=micro_batches,
        ttft=ttft,
        steady_throughput=steady_throughput,
        bubble_fraction=bubble,
    )
