"""Extension experiment: TTFT/throughput under load, colocated vs disaggregated.

Drives the discrete-event simulator with a Poisson stream of 128K-context
requests and compares CP4 colocated (prefill preempts decode) against CP4
prefill + dedicated TP8 decode — the serving-architecture question raised
by §4.3. :func:`run_runtime` asks the same system-level questions of the
*numeric* continuous-batching runtime instead: real engine rounds, real
paged-KV capacity pressure, real preemptions — with latencies priced at
paper scale by the calibrated model.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config
from repro.perf.hardware import HostSpec, gtt_host
from repro.serving.simulator import ClusterServingSimulator, poisson_arrivals


def run(
    host: HostSpec | None = None,
    *,
    n_ranks: int = 4,
    n_requests: int = 24,
    context_tokens: int = 131072,
    output_tokens: int = 64,
) -> ExperimentResult:
    host = host if host is not None else gtt_host()
    cfg = llama3_405b_config()

    res = ExperimentResult(
        experiment_id="Serving under load",
        title=(
            f"Poisson load, {context_tokens // 1024}K context, "
            f"{output_tokens} output tokens, CP{n_ranks}"
        ),
        headers=[
            "arrival rate (req/s)", "mode",
            "mean TTFT (s)", "p99 TTFT (s)",
            "mean ms/token", "mean E2E (s)",
            "throughput (req/s)",
        ],
    )
    for rate in (0.02, 0.05, 0.08):
        arrivals = poisson_arrivals(
            rate, n_requests,
            context_tokens=context_tokens, output_tokens=output_tokens, seed=7,
        )
        for disagg in (False, True):
            sim = ClusterServingSimulator(cfg, host, n_ranks=n_ranks, disaggregated=disagg)
            report = sim.simulate(arrivals)
            per_token = [
                (c.finish - c.first_token) / max(c.decoded, 1)
                for c in report.completions
            ]
            e2e = [c.finish - c.arrival for c in report.completions]
            res.add_row(
                rate,
                "disaggregated" if disagg else "colocated",
                report.mean_ttft(),
                report.p99_ttft(),
                1e3 * sum(per_token) / len(per_token),
                sum(e2e) / len(e2e),
                report.throughput(),
            )
    res.notes.append(
        "TTFT is prefill-pool-bound and similar in both modes; the decode "
        "experience is not: colocated sequences stall behind every queued "
        "prefill (ms/token includes multi-second gaps), while the "
        "dedicated decode host streams tokens at TP8 TTIT - the "
        "Mooncake/DistServe architecture the paper recommends (§4.3)."
    )
    return res


def run_runtime(
    host: HostSpec | None = None,
    *,
    n_sessions: int = 4,
    turns: int = 2,
    first_prompt: int = 48,
    world_size: int = 2,
    priced_ranks: int = 4,
    seed: int = 11,
) -> ExperimentResult:
    """Capacity-pressure sweep through the continuous-batching runtime.

    Replays one multi-session trace through the *numeric* runtime at a
    sweep of per-rank KV capacities (unbounded down to barely-fits). As
    capacity shrinks, admission control starts preempting: requests lose
    their cache and pay exact re-prefill on resume, which shows up as
    extra prefill rounds, later simulated finish times and a falling
    goodput — the behaviour the analytic simulator can only assert,
    demonstrated here by a system whose every token is bit-checked
    against sequential replay (see ``tests/properties/test_prop_runtime``).

    Numerics run the tiny model at ``world_size``; the step clock prices
    rounds for Llama3 405B on ``priced_ranks`` CP hosts.
    """
    from repro.model.config import tiny_config
    from repro.model.llama import LlamaModel
    from repro.core.engine import ContextParallelEngine
    from repro.perf.latency import LatencySimulator
    from repro.runtime import ContinuousBatchingRuntime, SimulatedStepClock
    from repro.serving.scheduler import ChunkedPrefillPolicy
    from repro.workloads.generator import WorkloadGenerator
    from repro.workloads.replay import collect_generated, submit_scripts_to_runtime

    host = host if host is not None else gtt_host()
    cfg = tiny_config()
    model = LlamaModel(cfg, seed=0)
    gen = WorkloadGenerator(cfg.vocab_size, seed=seed)
    # a length-mixed trace (one 3x-long prompt per four sessions) so the
    # FIFO-vs-SRPF packing comparison has head-of-line blocking to remove
    scripts = [
        gen.conversation(
            sid, turns=turns,
            first_prompt=first_prompt * (3 if sid % 4 == 0 else 1),
            followup_range=(6, 12), response_range=(4, 6),
        )
        for sid in range(n_sessions)
    ]
    clock = SimulatedStepClock(
        LatencySimulator(llama3_405b_config(), host), n_ranks=priced_ranks
    )

    res = ExperimentResult(
        experiment_id="Runtime under capacity pressure",
        title=(
            f"{n_sessions} sessions x {turns} turns through the "
            f"continuous-batching runtime (CP{world_size} numerics, "
            f"CP{priced_ranks} pricing)"
        ),
        headers=[
            "KV capacity/rank", "policy", "preemptions", "KV tokens evicted",
            "prefill rounds", "decode rounds",
            "mean TTFT (s)", "p95 TTFT (s)", "makespan (s)",
        ],
    )
    for capacity in (None, 160, 96):
        tokens_by_policy = {}
        for order in ("fifo", "srpf"):
            engine = ContextParallelEngine(
                model, world_size=world_size, capacity_tokens=capacity
            )
            runtime = ContinuousBatchingRuntime(
                engine,
                policy=ChunkedPrefillPolicy(
                    chunk_tokens=16, max_tokens_per_round=32, max_seqs_per_round=4,
                    order=order,
                ),
                clock=clock,
            )
            rids = submit_scripts_to_runtime(runtime, scripts)
            report = runtime.run(max_steps=100_000)
            tokens_by_policy[order] = collect_generated(report, rids)
            m = report.metrics
            res.add_row(
                "unbounded" if capacity is None else capacity,
                order,
                m.preemptions,
                m.evicted_tokens,
                report.prefill_rounds,
                report.decode_rounds,
                float(np.mean(m.ttft_samples)),
                m.percentile_ttft(95),
                report.makespan,
            )
        if tokens_by_policy["srpf"] != tokens_by_policy["fifo"]:
            raise AssertionError(
                "serving-level exactness violated: the chunk-packing order "
                f"changed decoded tokens at capacity {capacity}"
            )
    res.notes.append(
        "Same trace, same (bit-identical) tokens at every capacity and "
        "packing order (asserted) - shrinking the paged KV pool only adds "
        "preemptions, whose exact re-prefill work surfaces as extra "
        "prefill rounds and a longer simulated makespan. The runtime "
        "turns the paper's OOM-postponing load-balance argument (§3.6) "
        "into an executable capacity/latency trade-off curve."
    )
    mean_ttft = res.column("mean TTFT (s)")
    res.notes.append(
        "FIFO vs SRPF mean TTFT per capacity: "
        + "; ".join(
            f"{res.column('KV capacity/rank')[i]}: {mean_ttft[i]:.2f}s -> {mean_ttft[i + 1]:.2f}s"
            for i in range(0, len(mean_ttft), 2)
        )
        + " - shortest-remaining-prefill-first slips short prompts past the "
        "long head-of-line prompt, trading its TTFT for everyone else's."
    )
    return res
