"""Table 7: TTFT / TTIT across parallelization configs at 128K.

CP1/2/4 (+TP8 intra-node) versus TP16/TP32, batch 1. Reproduced claims:
CP scales prefill near-linearly and beats same-node-count TP; decode TTIT
degrades for both (4 nodes can be slower than 1 — §4.3's conclusion that
CP suits prefill and wants a disaggregated serving architecture).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.model.config import llama3_405b_config
from repro.perf.hardware import HostSpec, gtt_host
from repro.perf.latency import LatencySimulator
from repro.workloads.traces import TABLE7_CONFIGS

#: Paper Table 7 (ms): label -> (ttft, ttit)
PAPER_TABLE7 = {
    "CP1+TP8": (42010, 46.26),
    "CP2+TP8": (21042, 60.23),
    "TP16": (29917, 39.52),
    "CP4+TP8": (10950, 71.31),
    "TP32": (19841, 47.3),
}

CONTEXT = 131072


def run(host: HostSpec | None = None) -> ExperimentResult:
    host = host if host is not None else gtt_host()
    sim = LatencySimulator(llama3_405b_config(), host)

    res = ExperimentResult(
        experiment_id="Table 7",
        title="TTFT / TTIT (ms) at 128K, batch 1",
        headers=["config", "TTFT", "TTIT", "paper TTFT", "paper TTIT"],
    )
    for label, kind, nodes in TABLE7_CONFIGS:
        if kind == "cp":
            ttft = sim.cp_prefill(CONTEXT, n_ranks=nodes).total * 1e3
            ttit = (
                sim.cp_decode(CONTEXT, n_ranks=nodes).total
                if nodes > 1
                else sim.tp_decode(CONTEXT, n_nodes=1).total
            ) * 1e3
        else:
            ttft = sim.tp_prefill(CONTEXT, n_nodes=nodes).total * 1e3
            ttit = sim.tp_decode(CONTEXT, n_nodes=nodes).total * 1e3
        paper = PAPER_TABLE7[label]
        res.add_row(label, ttft, ttit, paper[0], paper[1])
    res.notes.append(
        "Prefill: CP4 ~4x faster than CP1 and ~2x faster than TP32. "
        "Decode: both CP and TP regress when scaled to 4 nodes."
    )
    return res
