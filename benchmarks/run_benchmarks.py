#!/usr/bin/env python
"""Run the numeric-kernel benchmarks and record ``BENCH_kernels.json``.

Entry point for tracking the simulator substrate's performance trajectory
across PRs: it runs ``bench_numeric_kernels.py`` under pytest-benchmark,
then distills the stats into a small machine-readable JSON checked in at
the repository root. Compare the committed file against a fresh run to see
whether a change sped up or regressed the hot path.

Usage::

    python benchmarks/run_benchmarks.py            # full statistics
    python benchmarks/run_benchmarks.py --smoke    # 1 round (CI run-check)
    python benchmarks/run_benchmarks.py -k flash   # subset by name
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = Path(__file__).resolve().parent / "bench_numeric_kernels.py"

# Mean latencies of the seed (pre-fused-kernel) substrate on the PR 1
# container, kept so every later BENCH_kernels.json carries its own
# before/after reference point.
SEED_BASELINE_MEAN_MS = {
    "bench_reference_attention": 32.08,
    "bench_flash_attention": 31.63,
    "bench_ring_passkv_cp4": 42.24,
    "bench_ring_passq_cp4": 40.25,
    "bench_engine_prefill_cp2": 6.55,
}


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--output",
        default=None,
        help="where to write the distilled results (default: BENCH_kernels.json "
        "at the repo root for full runs; a scratch file for --smoke or -k "
        "subset runs, so partial/noise stats never clobber the tracked record)",
    )
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="single round per benchmark: import/run check, timings are noise",
    )
    ap.add_argument("-k", "--select", default=None, help="pytest -k expression")
    args = ap.parse_args(argv)

    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src

    with tempfile.TemporaryDirectory() as tmp:
        raw_json = Path(tmp) / "bench.json"
        cmd = [
            sys.executable, "-m", "pytest", str(BENCH_FILE),
            "--benchmark-only", "-q", f"--benchmark-json={raw_json}",
        ]
        if args.smoke:
            cmd.append("--smoke")
        if args.select:
            cmd += ["-k", args.select]
        rc = subprocess.call(cmd, cwd=ROOT, env=env)
        if rc != 0:
            return rc
        raw = json.loads(raw_json.read_text())

    record = {
        "generated_unix": int(time.time()),
        "smoke": bool(args.smoke),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "seed_baseline_mean_ms": SEED_BASELINE_MEAN_MS,
        "benchmarks": {
            b["name"]: {
                "mean_ms": round(b["stats"]["mean"] * 1e3, 4),
                "min_ms": round(b["stats"]["min"] * 1e3, 4),
                "stddev_ms": round(b["stats"]["stddev"] * 1e3, 4),
                "rounds": b["stats"]["rounds"],
                **({"extra_info": b["extra_info"]} if b.get("extra_info") else {}),
            }
            for b in raw["benchmarks"]
        },
    }
    if args.output is not None:
        out_path = Path(args.output)
    elif args.smoke or args.select:
        out_path = ROOT / "BENCH_kernels.partial.json"
    else:
        out_path = ROOT / "BENCH_kernels.json"
    out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    if out_path == ROOT / "BENCH_kernels.json":
        # a successful full run supersedes any smoke/subset scratch file;
        # leaving it around would masquerade as a tracked record
        (ROOT / "BENCH_kernels.partial.json").unlink(missing_ok=True)

    width = max(len(n) for n in record["benchmarks"]) if record["benchmarks"] else 0
    print(f"\nwrote {out_path}")
    for name, stats in sorted(record["benchmarks"].items()):
        print(f"  {name:<{width}}  mean {stats['mean_ms']:9.3f} ms  min {stats['min_ms']:9.3f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
