"""Serving metrics aggregation (TTFT / TTIT / cache hit rates)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serving.request import TurnRecord


@dataclass
class ServingMetrics:
    """Rolling aggregate over completed turns.

    TTFT/TTIT samples come from the analytic simulator or the serving
    runtime's step clock (seconds); token and cache-hit accounting comes
    from the numeric engine's turn records. Preemption/eviction counters
    are fed by the continuous-batching runtime's capacity-pressure path,
    broken out by remedy: full evictions (``preemptions``), tail-trims
    (``trims``), and CPU swaps (``swaps_out``/``swaps_in`` with the PCIe
    stall seconds they cost the pools).
    Pool busy-time and KV-transfer counters are fed by the (optionally
    disaggregated) runtime's event loop: per-pool utilization is
    ``pool_busy_s[pool] / makespan``, and the transfer-stall counter is
    the decode-pool idle time spent waiting for KV still on the wire.
    Fault counters are fed by the runtime's chaos layer
    (:mod:`repro.runtime.faults`): injected transfer failures (split
    into backoff retries and re-prefill fallbacks), lost swap payloads,
    whole-pool resets, degraded-ladder fallbacks, and the
    deadline/backpressure shedding tallies behind the ``goodput``
    metric (completed requests per simulated host-second).
    """

    ttft_samples: list[float] = field(default_factory=list)
    ttit_samples: list[float] = field(default_factory=list)
    turns: list[TurnRecord] = field(default_factory=list)
    preemptions: int = 0
    evicted_tokens: int = 0
    trims: int = 0
    trimmed_kv_tokens: int = 0
    swaps_out: int = 0
    swaps_in: int = 0
    swapped_out_tokens: int = 0
    swapped_in_tokens: int = 0
    swap_stall_s: float = 0.0
    pool_busy_s: dict[str, float] = field(default_factory=dict)
    pool_rounds: dict[str, int] = field(default_factory=dict)
    peak_kv_utilization: dict[str, float] = field(default_factory=dict)
    transfers: int = 0
    transferred_kv_tokens: int = 0
    transfer_refusals: int = 0
    transfers_cancelled: int = 0
    transfers_refunded: int = 0
    transfer_stall_s: float = 0.0
    prefix_hits: int = 0
    prefix_misses: int = 0
    prefix_reused_tokens: int = 0
    prefix_evictions: int = 0
    prefix_evicted_tokens: int = 0
    ttft_cold_samples: list[float] = field(default_factory=list)
    ttft_warm_samples: list[float] = field(default_factory=list)
    transfer_faults: int = 0
    fault_retries: int = 0
    fault_backoff_s: float = 0.0
    swap_losses: int = 0
    swap_lost_tokens: int = 0
    pool_resets: int = 0
    pool_reset_evicted_tokens: int = 0
    degraded_fallbacks: int = 0
    timeouts: int = 0
    sheds: int = 0
    completed_requests: int = 0

    def record_turn(self, turn: TurnRecord, *, ttft: float | None = None, ttit: float | None = None) -> None:
        self.turns.append(turn)
        self.completed_requests += 1
        if ttft is not None:
            self.ttft_samples.append(float(ttft))
        if ttit is not None:
            self.ttit_samples.append(float(ttit))

    def record_ttit(self, ttit: float) -> None:
        """Record one inter-token gap (runtime decode streaming)."""
        self.ttit_samples.append(float(ttit))

    def record_preemption(self, evicted_tokens: int) -> None:
        """Count one capacity-pressure preemption and the KV it evicted."""
        self.preemptions += 1
        self.evicted_tokens += int(evicted_tokens)

    def record_trim(self, trimmed_tokens: int) -> None:
        """Count one tail-trim remedy and the KV tokens it dropped."""
        self.trims += 1
        self.trimmed_kv_tokens += int(trimmed_tokens)

    def record_swap_out(self, tokens: int, *, stall_s: float = 0.0) -> None:
        """Count one device->host KV swap and the pool stall it cost."""
        if stall_s < 0:
            raise ValueError(f"swap stall must be >= 0, got {stall_s}")
        self.swaps_out += 1
        self.swapped_out_tokens += int(tokens)
        self.swap_stall_s += float(stall_s)

    def record_swap_in(self, tokens: int, *, stall_s: float = 0.0) -> None:
        """Count one host->device KV swap and the pool stall it cost."""
        if stall_s < 0:
            raise ValueError(f"swap stall must be >= 0, got {stall_s}")
        self.swaps_in += 1
        self.swapped_in_tokens += int(tokens)
        self.swap_stall_s += float(stall_s)

    def record_round(self, pool: str, busy_s: float) -> None:
        """Account one engine round's busy time against ``pool``."""
        self.pool_busy_s[pool] = self.pool_busy_s.get(pool, 0.0) + float(busy_s)
        self.pool_rounds[pool] = self.pool_rounds.get(pool, 0) + 1

    def record_kv_occupancy(self, pool: str, fraction: float) -> None:
        """Sample a pool's claimed KV-block fraction (peak is kept)."""
        current = self.peak_kv_utilization.get(pool, 0.0)
        self.peak_kv_utilization[pool] = max(current, float(fraction))

    def record_transfer(self, tokens: int) -> None:
        """Count one landed prefill->decode KV transfer."""
        self.transfers += 1
        self.transferred_kv_tokens += int(tokens)

    def record_transfer_refusal(self) -> None:
        """Count a transfer the decode pool's admission control refused."""
        self.transfer_refusals += 1

    def record_transfer_cancel(self, *, refunded: bool = False) -> None:
        """Count a cancelled transfer.

        Args:
            refunded: the cancel wasted no wire time (the payload never
                started streaming, so the channel refunded its whole
                reservation). Refunded cancels are a subset of
                ``transfers_cancelled``, counted once — a cancel is never
                both sunk and refunded.
        """
        self.transfers_cancelled += 1
        if refunded:
            self.transfers_refunded += 1

    def record_prefix_hit(self, reused_tokens: int) -> None:
        """Count one prefix-cache lookup that adopted a cached prefix."""
        if reused_tokens < 1:
            raise ValueError(f"a prefix hit must reuse >= 1 token, got {reused_tokens}")
        self.prefix_hits += 1
        self.prefix_reused_tokens += int(reused_tokens)

    def record_prefix_miss(self) -> None:
        """Count one prefix-cache lookup that matched nothing."""
        self.prefix_misses += 1

    def record_prefix_eviction(self, tokens: int) -> None:
        """Count one LRU eviction of a finished cached prefix resident."""
        self.prefix_evictions += 1
        self.prefix_evicted_tokens += int(tokens)

    def record_ttft_split(self, ttft: float, *, warm: bool) -> None:
        """File a TTFT sample under the warm (prefix hit) or cold bucket.

        Split accounting only — callers still record the sample in the
        overall TTFT population via :meth:`record_turn`.
        """
        (self.ttft_warm_samples if warm else self.ttft_cold_samples).append(float(ttft))

    def record_transfer_fault(self, *, retried: bool, backoff_s: float = 0.0) -> None:
        """Count one injected mid-stream KV-transfer failure.

        Args:
            retried: the degradation ladder rescheduled the payload
                after ``backoff_s`` of capped exponential backoff;
                ``False`` means the retry budget was spent and the
                request fell back to full re-prefill (counted separately
                via :meth:`record_degraded_fallback`).
            backoff_s: retry delay charged to the wire schedule.
        """
        if backoff_s < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff_s}")
        self.transfer_faults += 1
        if retried:
            self.fault_retries += 1
            self.fault_backoff_s += float(backoff_s)

    def record_swap_loss(self, tokens: int) -> None:
        """Count one host-store payload lost at swap-in time."""
        self.swap_losses += 1
        self.swap_lost_tokens += int(tokens)

    def record_pool_reset(self, evicted_tokens: int) -> None:
        """Count one whole-pool KV reset and the resident KV it dropped."""
        self.pool_resets += 1
        self.pool_reset_evicted_tokens += int(evicted_tokens)

    def record_degraded_fallback(self) -> None:
        """Count one degradation-ladder bottom-out: a fault recovery that
        ended in recomputation (re-prefill) instead of the cheap path."""
        self.degraded_fallbacks += 1

    def record_timeout(self) -> None:
        """Count one request shed for blowing its completion deadline."""
        self.timeouts += 1

    def record_shed(self) -> None:
        """Count one request shed by queue-depth backpressure (or
        cascaded from an earlier shed turn of its conversation)."""
        self.sheds += 1

    def record_transfer_stall(self, seconds: float) -> None:
        """Account decode-pool idle time spent waiting on the KV stream.

        Raises:
            ValueError: negative stall — a symptom of cancel-refund
                accounting gone wrong (a repacked schedule must never
                place a finish behind the clock that waited on it).
        """
        if seconds < 0:
            raise ValueError(f"transfer stall must be >= 0, got {seconds}")
        self.transfer_stall_s += float(seconds)

    # ------------------------------- views ------------------------------ #

    @property
    def total_prompt_tokens(self) -> int:
        return sum(t.prompt_tokens for t in self.turns)

    @property
    def total_generated_tokens(self) -> int:
        return sum(t.response_tokens for t in self.turns)

    @property
    def mean_cache_hit_rate(self) -> float:
        """Average of ``P / (T + P)`` over turns (1 - miss rate)."""
        if not self.turns:
            return 0.0
        return float(np.mean([1.0 - t.miss_rate for t in self.turns]))

    def algo_counts(self) -> dict[str, int]:
        """Prefill algorithm selection frequencies."""
        counts: dict[str, int] = {}
        for t in self.turns:
            counts[t.algo] = counts.get(t.algo, 0) + 1
        return counts

    def percentile_ttft(self, q: float) -> float:
        """TTFT percentile in seconds; ``nan`` when no samples exist."""
        if not self.ttft_samples:
            return float("nan")
        return float(np.percentile(self.ttft_samples, q))

    def percentile_ttit(self, q: float) -> float:
        """TTIT percentile in seconds; ``nan`` when no samples exist."""
        if not self.ttit_samples:
            return float("nan")
        return float(np.percentile(self.ttit_samples, q))

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of prefix-cache lookups that reused cached KV.

        Every admission-time index lookup counts — fresh conversations
        and re-matches of evicted follow-up turns alike — so hits and
        misses are recorded symmetrically.
        """
        total = self.prefix_hits + self.prefix_misses
        return self.prefix_hits / total if total else 0.0

    def percentile_ttft_split(self, q: float, *, warm: bool) -> float:
        """Warm- or cold-bucket TTFT percentile; ``nan`` without samples."""
        samples = self.ttft_warm_samples if warm else self.ttft_cold_samples
        if not samples:
            return float("nan")
        return float(np.percentile(samples, q))

    def pool_utilization(self, pool: str, makespan: float) -> float:
        """Busy fraction of ``pool`` over ``makespan`` (nan when unknown)."""
        if makespan <= 0 or pool not in self.pool_busy_s:
            return float("nan")
        return self.pool_busy_s[pool] / makespan

    def goodput(self, makespan: float) -> float:
        """Completed requests per simulated host-second (DistServe's
        serving-quality axis — shed/timed-out requests count against it
        by not counting at all). 0 before any time elapses."""
        if makespan <= 0:
            return 0.0
        return self.completed_requests / makespan

    def summary(self) -> str:
        lines = [
            f"turns: {len(self.turns)}",
            f"prompt tokens: {self.total_prompt_tokens}",
            f"generated tokens: {self.total_generated_tokens}",
            f"mean cache hit rate: {self.mean_cache_hit_rate:.3f}",
            f"algo counts: {self.algo_counts()}",
            f"preemptions: {self.preemptions} ({self.evicted_tokens} KV tokens evicted)",
        ]
        if self.ttft_samples:
            lines.append(
                "TTFT p50/p95/p99: "
                f"{self.percentile_ttft(50):.3f}/{self.percentile_ttft(95):.3f}/"
                f"{self.percentile_ttft(99):.3f}s"
            )
        if self.ttit_samples:
            lines.append(
                "TTIT p50/p95/p99: "
                f"{self.percentile_ttit(50) * 1e3:.2f}/{self.percentile_ttit(95) * 1e3:.2f}/"
                f"{self.percentile_ttit(99) * 1e3:.2f}ms"
            )
        if self.prefix_hits or self.prefix_misses:
            line = (
                f"prefix cache: {self.prefix_hits}/{self.prefix_hits + self.prefix_misses} "
                f"hits ({self.prefix_hit_rate:.1%}), "
                f"{self.prefix_reused_tokens} tokens reused, "
                f"{self.prefix_evictions} cached prefixes evicted"
            )
            if self.ttft_warm_samples and self.ttft_cold_samples:
                line += (
                    f"; TTFT p50 warm/cold: "
                    f"{self.percentile_ttft_split(50, warm=True):.3f}/"
                    f"{self.percentile_ttft_split(50, warm=False):.3f}s"
                )
            lines.append(line)
        if self.trims:
            lines.append(
                f"tail trims: {self.trims} ({self.trimmed_kv_tokens} KV tokens dropped)"
            )
        if self.swaps_out or self.swaps_in:
            lines.append(
                f"KV swaps: {self.swaps_out} out/{self.swaps_in} in "
                f"({self.swapped_out_tokens} tokens out, "
                f"{self.swapped_in_tokens} back, "
                f"{self.swap_stall_s:.3f}s swap stall)"
            )
        if self.transfers or self.transfer_refusals or self.transfers_cancelled:
            lines.append(
                f"KV transfers: {self.transfers} "
                f"({self.transferred_kv_tokens} tokens, "
                f"{self.transfer_refusals} refused, "
                f"{self.transfers_cancelled} cancelled "
                f"({self.transfers_refunded} refunded), "
                f"{self.transfer_stall_s:.3f}s decode stall)"
            )
        if self.transfer_faults or self.swap_losses or self.pool_resets:
            lines.append(
                f"injected faults: {self.transfer_faults} transfer "
                f"({self.fault_retries} retried, {self.fault_backoff_s:.3f}s backoff), "
                f"{self.swap_losses} swap losses ({self.swap_lost_tokens} tokens), "
                f"{self.pool_resets} pool resets "
                f"({self.pool_reset_evicted_tokens} tokens dropped); "
                f"{self.degraded_fallbacks} degraded to recompute"
            )
        if self.timeouts or self.sheds:
            lines.append(
                f"shed: {self.timeouts} timed out, {self.sheds} rejected/cascaded "
                f"({self.completed_requests} requests completed)"
            )
        if self.pool_busy_s:
            busy = ", ".join(
                f"{pool}: {self.pool_busy_s[pool]:.3f}s/{self.pool_rounds.get(pool, 0)} rounds"
                for pool in sorted(self.pool_busy_s)
            )
            lines.append(f"pool busy: {busy}")
        if self.peak_kv_utilization:
            peak = ", ".join(
                f"{pool}: {frac:.1%}"
                for pool, frac in sorted(self.peak_kv_utilization.items())
            )
            lines.append(f"peak KV occupancy: {peak}")
        return "\n".join(lines)


@dataclass
class FleetMetrics:
    """Per-replica :class:`ServingMetrics` plus fleet-level rollups.

    The scheduler-facing aggregate the cluster tier reports: each
    replica keeps its own independent ``ServingMetrics`` instance (the
    fleet never shares counter state between replicas), and this class
    only *reads* them — per-replica hit-rate/goodput/utilization for
    routing-quality analysis, concatenated TTFT populations for
    fleet-level percentiles.

    Attributes:
        replicas: replica id -> that replica's own metrics instance.
        makespans: replica id -> that replica's clock at report time
            (denominator for its goodput/utilization).
    """

    replicas: dict[int, "ServingMetrics"] = field(default_factory=dict)
    makespans: dict[int, float] = field(default_factory=dict)

    def add_replica(
        self, replica_id: int, metrics: "ServingMetrics", makespan: float
    ) -> None:
        if replica_id in self.replicas:
            raise ValueError(f"replica {replica_id} already added")
        self.replicas[replica_id] = metrics
        self.makespans[replica_id] = float(makespan)

    # -------------------------- per-replica views ------------------------ #

    def hit_rate(self, replica_id: int) -> float:
        """One replica's prefix-cache hit rate."""
        return self.replicas[replica_id].prefix_hit_rate

    def replica_goodput(self, replica_id: int) -> float:
        """One replica's completed requests per simulated second."""
        return self.replicas[replica_id].goodput(self.makespans[replica_id])

    def utilization(self, replica_id: int) -> dict[str, float]:
        """One replica's per-pool busy fractions over its own makespan."""
        m = self.replicas[replica_id]
        span = self.makespans[replica_id]
        return {pool: m.pool_utilization(pool, span) for pool in sorted(m.pool_busy_s)}

    # --------------------------- fleet rollups --------------------------- #

    @property
    def completed_requests(self) -> int:
        return sum(m.completed_requests for m in self.replicas.values())

    @property
    def prefix_hits(self) -> int:
        return sum(m.prefix_hits for m in self.replicas.values())

    @property
    def prefix_misses(self) -> int:
        return sum(m.prefix_misses for m in self.replicas.values())

    @property
    def prefix_hit_rate(self) -> float:
        """Fleet-wide prefix-cache hit rate (all lookups pooled)."""
        total = self.prefix_hits + self.prefix_misses
        return self.prefix_hits / total if total else 0.0

    def _ttft_population(self, *, warm: bool | None = None) -> list[float]:
        samples: list[float] = []
        for rid in sorted(self.replicas):
            m = self.replicas[rid]
            if warm is None:
                samples.extend(m.ttft_samples)
            elif warm:
                samples.extend(m.ttft_warm_samples)
            else:
                samples.extend(m.ttft_cold_samples)
        return samples

    def percentile_ttft(self, q: float) -> float:
        """Fleet TTFT percentile over every replica's samples; ``nan``
        when no replica has any."""
        samples = self._ttft_population()
        if not samples:
            return float("nan")
        return float(np.percentile(samples, q))

    def percentile_ttft_split(self, q: float, *, warm: bool) -> float:
        """Fleet warm/cold TTFT percentile; ``nan`` without samples."""
        samples = self._ttft_population(warm=warm)
        if not samples:
            return float("nan")
        return float(np.percentile(samples, q))

    def fleet_goodput(self, makespan: float) -> float:
        """Fleet-completed requests per simulated second of fleet time
        (``makespan`` should be the latest replica clock)."""
        if makespan <= 0:
            return 0.0
        return self.completed_requests / makespan

    def summary(self) -> str:
        lines = [f"replicas: {len(self.replicas)}"]
        for rid in sorted(self.replicas):
            m = self.replicas[rid]
            span = self.makespans[rid]
            util = self.utilization(rid)
            util_s = (
                ", ".join(f"{pool}: {frac:.1%}" for pool, frac in util.items())
                or "idle"
            )
            lines.append(
                f"  replica {rid}: {m.completed_requests} completed, "
                f"goodput {self.replica_goodput(rid):.3f}/s, "
                f"hit rate {m.prefix_hit_rate:.1%}, "
                f"makespan {span:.3f}s, util {util_s}"
            )
        if self.prefix_hits or self.prefix_misses:
            lines.append(
                f"fleet prefix cache: {self.prefix_hits}/"
                f"{self.prefix_hits + self.prefix_misses} hits "
                f"({self.prefix_hit_rate:.1%})"
            )
        samples = self._ttft_population()
        if samples:
            line = (
                f"fleet TTFT p50/p95: "
                f"{self.percentile_ttft(50):.3f}/{self.percentile_ttft(95):.3f}s"
            )
            if self._ttft_population(warm=True) and self._ttft_population(warm=False):
                line += (
                    f"; p50 warm/cold: "
                    f"{self.percentile_ttft_split(50, warm=True):.3f}/"
                    f"{self.percentile_ttft_split(50, warm=False):.3f}s"
                )
            lines.append(line)
        return "\n".join(lines)
