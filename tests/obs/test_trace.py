"""Unit tests for the tracer: null behavior, scoping, wire round-trip."""

from repro.obs import NULL_TRACER, RecordingTracer, TraceEvent


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.instant("admit", 1.0, request_id=3)
        NULL_TRACER.span("prefill_round", 1.0, 2.0, pool="prefill")
        # nothing recorded anywhere, nothing raised

    def test_scoped_returns_itself(self):
        assert NULL_TRACER.scoped(replica=2) is NULL_TRACER
        assert NULL_TRACER.scoped(replica=2).scoped(pool="wire") is NULL_TRACER


class TestRecordingTracer:
    def test_ident_fields_lift_rest_to_attrs(self):
        t = RecordingTracer()
        t.instant(
            "preempt", 4.0,
            replica=1, pool="prefill", request_id=7, seq_id=2,
            remedy="trim", tokens=16,
        )
        [e] = t.events
        assert (e.replica, e.pool, e.request_id, e.seq_id) == (1, "prefill", 7, 2)
        assert e.attrs == {"remedy": "trim", "tokens": 16}
        assert e.phase == "instant" and e.dur == 0.0

    def test_span_carries_duration(self):
        t = RecordingTracer()
        t.span("decode_round", 1.0, 0.5, pool="decode")
        [e] = t.events
        assert e.phase == "span" and e.dur == 0.5

    def test_emission_order_preserved(self):
        t = RecordingTracer()
        for i in range(5):
            t.instant("decode_token", float(i), request_id=i)
        assert [e.t for e in t.events] == [0.0, 1.0, 2.0, 3.0, 4.0]


class TestScoping:
    def test_scope_stamps_defaults(self):
        t = RecordingTracer()
        t.scoped(replica=3).instant("admit", 1.0, request_id=0)
        assert t.events[0].replica == 3

    def test_emit_site_wins_over_scope(self):
        t = RecordingTracer()
        t.scoped(pool="wire").instant("kv_transfer", 1.0, pool="decode")
        assert t.events[0].pool == "decode"

    def test_nested_scopes_merge_inner_wins(self):
        t = RecordingTracer()
        inner = t.scoped(replica=1, pool="prefill").scoped(pool="wire")
        inner.instant("kv_transfer_schedule", 2.0, seq_id=5)
        [e] = t.events
        assert (e.replica, e.pool, e.seq_id) == (1, "wire", 5)

    def test_scoped_view_shares_event_list(self):
        t = RecordingTracer()
        view = t.scoped(replica=0)
        view.instant("admit", 1.0)
        assert view.events is t.events
        assert len(t.events) == 1


class TestWireFormat:
    def test_round_trip(self):
        original = TraceEvent(
            name="swap_out", phase="span", t=3.0, dur=0.25,
            replica=2, pool="decode", request_id=9, seq_id=4,
            attrs={"tokens": 64},
        )
        assert TraceEvent.from_dict(original.to_dict()) == original

    def test_nones_dropped_and_instant_has_no_dur(self):
        d = TraceEvent(name="admit", phase="instant", t=1.0).to_dict()
        assert d == {"name": "admit", "phase": "instant", "t": 1.0}

    def test_span_keeps_dur(self):
        d = TraceEvent(name="x", phase="span", t=1.0, dur=2.0).to_dict()
        assert d["dur"] == 2.0
