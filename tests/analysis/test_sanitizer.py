"""Shadow-state sanitizer: every error class fires at the offending op,
clean lifecycles stay silent, and sanitized runtimes are byte-identical."""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import (
    AllocatorSanitizer,
    KVSanitizer,
    SanitizerError,
    attach_sanitizer,
)
from repro.core.engine import ContextParallelEngine
from repro.kvcache.paged import OutOfBlocksError, PagedAllocator
from repro.runtime.runtime import ContinuousBatchingRuntime
from repro.serving.scheduler import ChunkedPrefillPolicy
from repro.workloads.generator import WorkloadGenerator


def sanitized(num_blocks=8, block_size=4):
    alloc = PagedAllocator(num_blocks=num_blocks, block_size=block_size)
    existing = getattr(alloc, "_sanitizer", None)  # property-lane autouse fixture
    return alloc, (existing or AllocatorSanitizer(alloc))


class TestCleanLifecycle:
    def test_full_lifecycle_no_findings(self):
        alloc, san = sanitized()
        alloc.append((1,), 6)
        alloc.share((1,), (2,), 6)
        alloc.append((2,), 3)  # forces a COW split of the shared tail
        alloc.append((1,), 1)
        alloc.release_tail((1,), 2)
        alloc.release((2,))
        alloc.release((1,))
        alloc.release((99,))  # speculative release: documented no-op
        san.verify()
        assert alloc.audit() == []
        assert alloc.used_blocks == 0

    def test_cow_lineage_tracked(self):
        alloc, san = sanitized(block_size=8)
        alloc.append((1,), 6)
        shared = alloc._owners[(1,)][-1]
        alloc.share((1,), (2,), 6)
        alloc.append((2,), 1)
        fresh = alloc._owners[(2,)][-1]
        assert san.lineage[fresh] == shared

    def test_oom_rollback_verified_and_usable_after(self):
        alloc, san = sanitized(num_blocks=2, block_size=4)
        alloc.append((1,), 4)
        with pytest.raises(OutOfBlocksError):
            alloc.append((2,), 100)
        san.verify()
        alloc.append((2,), 4)  # pool still healthy after the rollback
        alloc.release((1,))
        alloc.release((2,))
        san.check_leaks(set())

    def test_shadow_tracks_allocator_exactly(self):
        alloc, san = sanitized()
        alloc.append((1,), 10)
        alloc.share((1,), (2,), 8)
        assert san.owners == {k: list(v) for k, v in alloc._owners.items()}
        assert san.fill == dict(alloc._fill)
        assert san.ref == dict(alloc._ref)

    def test_double_attach_rejected(self):
        alloc, san = sanitized()
        with pytest.raises(ValueError, match="already has a sanitizer"):
            AllocatorSanitizer(alloc)


class TestErrorClasses:
    """Each class is triggered by corrupting the allocator's books and
    then performing the op the corruption breaks — the error fires *at
    that op*, naming the block, with the op trace attached."""

    def test_double_free(self):
        alloc, san = sanitized()
        alloc.append((1,), 4)
        block = alloc._owners[(1,)][0]
        alloc._free.append(block)  # corrupt: freed while still owned
        with pytest.raises(SanitizerError) as exc:
            alloc.release((1,))
        assert exc.value.kind == "double_free"
        assert str(block) in exc.value.detail
        assert any("append" in op for op in exc.value.trace)

    def test_use_after_free(self):
        alloc, san = sanitized(block_size=8)
        alloc.append((1,), 6)
        block = alloc._owners[(1,)][0]
        # corrupt: block prematurely returned to the pool, stream kept
        alloc._free.append(block)
        del alloc._ref[block]
        with pytest.raises(SanitizerError) as exc:
            alloc.append((1,), 1)  # would write into the freed block
        assert exc.value.kind == "use_after_free"
        assert str(block) in exc.value.detail

    def test_refcount_underflow(self):
        alloc, san = sanitized()
        alloc.append((1,), 4)
        block = alloc._owners[(1,)][0]
        alloc._ref[block] = 0  # corrupt: one reference lost
        with pytest.raises(SanitizerError) as exc:
            alloc.release((1,))
        assert exc.value.kind == "refcount_underflow"
        assert str(block) in exc.value.detail

    def test_write_into_shared_block_without_cow(self):
        alloc, san = sanitized(block_size=8)
        alloc.append((1,), 6)
        alloc.share((1,), (2,), 6)
        block = alloc._owners[(1,)][-1]
        alloc._ref[block] = 1  # corrupt: allocator forgets the block is shared
        with pytest.raises(SanitizerError) as exc:
            alloc.append((1,), 1)  # fills the shared block in place
        assert exc.value.kind == "write_shared_no_cow"
        assert str(block) in exc.value.detail

    def test_leak_at_drain_point(self):
        alloc, san = sanitized()
        alloc.append((7,), 6)
        with pytest.raises(SanitizerError) as exc:
            san.check_leaks(resident_seq_ids=set())
        assert exc.value.kind == "leak"
        assert "(7,)" in exc.value.detail
        san.check_leaks(resident_seq_ids={7})  # resident: not a leak

    def test_corruption_of_owner_lists(self):
        alloc, san = sanitized()
        alloc.append((1,), 4)
        alloc._fill[(1,)] = 99  # corrupt bookkeeping with no legal-op shape
        with pytest.raises(SanitizerError) as exc:
            alloc.append((2,), 4)
        assert exc.value.kind == "corruption"

    def test_error_includes_op_trace(self):
        alloc, san = sanitized()
        alloc.append((1,), 4)
        alloc.append((2,), 4)
        block = alloc._owners[(1,)][0]
        alloc._free.append(block)
        with pytest.raises(SanitizerError) as exc:
            alloc.release((1,))
        trace = exc.value.trace
        assert len(trace) >= 3  # two appends + the failing release
        assert "release" in trace[-1]


class TestSanitizerVsAudit:
    """The sanitizer fires at the faulty op; audit() only sees the wreck
    afterwards — pin the 'strictly stronger' claim from the issue."""

    def test_sanitizer_fires_where_audit_cannot_localize(self):
        # unsanitized allocator: same corruption, audit reports the state
        # violation only after the fact, with no offending op
        alloc = PagedAllocator(num_blocks=8, block_size=4)
        alloc.append((1,), 4)
        block = alloc._owners[(1,)][0]
        alloc._free.append(block)
        problems = alloc.audit()
        assert any("simultaneously free and referenced" in p for p in problems)
        # sanitized allocator: identical corruption is pinned to the op
        alloc2, _ = sanitized()
        alloc2.append((1,), 4)
        block2 = alloc2._owners[(1,)][0]
        alloc2._free.append(block2)
        with pytest.raises(SanitizerError) as exc:
            alloc2.release((1,))
        assert exc.value.op.startswith("release")


class TestEngineSanitizer:
    def make_engine(self, tiny_model, capacity=256):
        return ContextParallelEngine(tiny_model, world_size=2, capacity_tokens=capacity)

    def test_attach_is_idempotent(self, tiny_model):
        engine = self.make_engine(tiny_model)
        san = attach_sanitizer(engine)
        assert attach_sanitizer(engine) is san
        assert isinstance(san, KVSanitizer)
        assert len(san.rank_sanitizers) == 2

    def test_clean_prefill_decode_evict_flow(self, tiny_model, rng):
        engine = self.make_engine(tiny_model)
        san = attach_sanitizer(engine)
        tokens = {0: rng.integers(0, 100, size=24), 1: rng.integers(0, 100, size=16)}
        engine.prefill(tokens)
        for _ in range(3):
            out = engine.decode({sid: 1 for sid in tokens})
        engine.evict_tail(0, keep_tokens=10)
        engine.evict(0)
        engine.evict(1)
        san.check_drained()

    def test_drain_check_catches_untracked_residue(self, tiny_model, rng):
        engine = self.make_engine(tiny_model)
        san = attach_sanitizer(engine)
        engine.prefill({0: rng.integers(0, 100, size=16)})
        # corrupt: the engine forgets the sequence without evicting it
        engine.seq_lengths.pop(0)
        with pytest.raises(SanitizerError) as exc:
            san.check_drained()
        assert exc.value.kind == "leak"

    def test_evict_postcondition(self, tiny_model, rng):
        engine = self.make_engine(tiny_model)
        san = attach_sanitizer(engine)
        engine.prefill({0: rng.integers(0, 100, size=16)})
        engine.evict(0)  # wrapped: verifies zero resident tokens after
        assert sum(c.tokens(0) for c in engine.caches) == 0

    def test_unbounded_engine_sanitizes_stream_level(self, tiny_model, rng):
        engine = ContextParallelEngine(tiny_model, world_size=2)  # no allocator
        san = attach_sanitizer(engine)
        assert san.rank_sanitizers == []
        engine.prefill({0: rng.integers(0, 100, size=16)})
        engine.seq_lengths.pop(0)
        with pytest.raises(SanitizerError) as exc:
            san.check_drained()
        assert exc.value.kind == "leak"


class TestSanitizedRuntime:
    def make_runtime(self, tiny_model, *, sanitize, disaggregate=False, **kw):
        engine = ContextParallelEngine(tiny_model, world_size=2, capacity_tokens=192)
        kwargs = dict(
            policy=ChunkedPrefillPolicy(
                chunk_tokens=16, max_tokens_per_round=32, max_seqs_per_round=4
            ),
            sanitize=sanitize,
            **kw,
        )
        if disaggregate:
            decode = ContextParallelEngine(
                tiny_model, world_size=2, capacity_tokens=192
            )
            return ContinuousBatchingRuntime(engine, decode_engine=decode, **kwargs)
        return ContinuousBatchingRuntime(engine, **kwargs)

    def run_tokens(self, runtime, vocab):
        gen = WorkloadGenerator(vocab, seed=3)
        for sid in range(3):
            runtime.submit_script(gen.conversation(sid, turns=2, first_prompt=40))
        runtime.run()
        return {rid: tuple(rec.generated) for rid, rec in runtime._records.items()}

    @pytest.mark.parametrize("shape", ["colocated", "disaggregated", "prefix"])
    def test_sanitize_true_is_transparent(self, tiny_model, shape):
        vocab = tiny_model.config.vocab_size
        kw = dict(
            disaggregate=(shape == "disaggregated"),
            prefix_cache=(shape == "prefix"),
        )
        base = self.run_tokens(self.make_runtime(tiny_model, sanitize=False, **kw), vocab)
        checked = self.run_tokens(self.make_runtime(tiny_model, sanitize=True, **kw), vocab)
        assert base == checked

    def test_runtime_exposes_sanitizers_and_checks_drain(self, tiny_model):
        rt = self.make_runtime(tiny_model, sanitize=True, disaggregate=True)
        assert len(rt.sanitizers) == 2
        self.run_tokens(rt, tiny_model.config.vocab_size)  # run() calls check_drained

    def test_unsanitized_runtime_has_no_sanitizers(self, tiny_model):
        rt = self.make_runtime(tiny_model, sanitize=False)
        assert rt.sanitizers == []
