"""NumPy Llama-style transformer, stage-decomposed for context parallelism.

The CP engine interleaves *local* per-rank compute with *global* ring
attention, so the model exposes each stage of a block separately:

    x = embed(tokens)
    for layer:
        q, k, v = attn_qkv(layer, x, positions)      # local (includes RoPE)
        attn    = <any exact attention over q/k/v>   # local or ring
        x       = attn_residual(layer, x, attn)      # local
        x       = ffn_residual(layer, x)             # local
    logits = unembed(x)

``forward`` composes the stages with a single-device flash kernel and is the
gold standard the distributed engine is tested against ("lossless exact").

Weights are generated deterministically from a seed at ``1/sqrt(fan_in)``
scale, so any two processes construct bit-identical models. When
``quantize_ffn`` is set the three FFN projections are stored row-wise
quantized (the paper's FP8 serving configuration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attention.flash import flash_attention
from repro.attention.rope import apply_rope, rope_frequencies
from repro.model.config import ModelConfig
from repro.model.mlp import swiglu
from repro.model.norms import rms_norm
from repro.model.quant import QuantizedLinear


@dataclass
class _LayerWeights:
    attn_norm: np.ndarray
    wq: np.ndarray  # [D, NH*DH]
    wk: np.ndarray  # [D, NKV*DH]
    wv: np.ndarray  # [D, NKV*DH]
    wo: np.ndarray  # [NH*DH, D]
    ffn_norm: np.ndarray
    w_gate: np.ndarray | QuantizedLinear
    w_up: np.ndarray | QuantizedLinear
    w_down: np.ndarray | QuantizedLinear


def _init(rng: np.random.Generator, fan_in: int, shape: tuple[int, ...]) -> np.ndarray:
    return rng.standard_normal(shape) / np.sqrt(fan_in)


class LlamaModel:
    """Deterministic synthetic-weight Llama-family model.

    Args:
        config: architecture (see :mod:`repro.model.config`).
        seed: weight-generation seed; equal seeds give equal models.
        quantize_ffn: store FFN weights row-wise quantized (paper §4.1).
    """

    def __init__(self, config: ModelConfig, *, seed: int = 0, quantize_ffn: bool = False):
        self.config = config
        self.quantize_ffn = quantize_ffn
        rng = np.random.default_rng(seed)
        d, dh = config.model_dim, config.head_dim
        nh, nkv, f = config.n_heads, config.n_kv_heads, config.ffn_dim

        self.embedding = _init(rng, d, (config.vocab_size, d)) * np.sqrt(d)  # unit-scale rows
        self.layers: list[_LayerWeights] = []
        for _ in range(config.n_layers):
            gate = _init(rng, d, (d, f))
            up = _init(rng, d, (d, f))
            down = _init(rng, f, (f, d))
            self.layers.append(
                _LayerWeights(
                    attn_norm=np.ones(d),
                    wq=_init(rng, d, (d, nh * dh)),
                    wk=_init(rng, d, (d, nkv * dh)),
                    wv=_init(rng, d, (d, nkv * dh)),
                    wo=_init(rng, nh * dh, (nh * dh, d)),
                    ffn_norm=np.ones(d),
                    w_gate=QuantizedLinear.from_weights(gate) if quantize_ffn else gate,
                    w_up=QuantizedLinear.from_weights(up) if quantize_ffn else up,
                    w_down=QuantizedLinear.from_weights(down) if quantize_ffn else down,
                )
            )
        self.final_norm = np.ones(d)
        self.unembedding = _init(rng, d, (d, config.vocab_size))
        self._rope_freqs = rope_frequencies(dh, theta=config.rope_theta)

    # ------------------------------- stages ------------------------------ #

    def embed(self, token_ids: np.ndarray) -> np.ndarray:
        """Token embedding lookup: int ``[T]`` -> ``[T, D]``."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 1:
            raise ValueError(f"token_ids must be [T], got {token_ids.shape}")
        if token_ids.size and (token_ids.min() < 0 or token_ids.max() >= self.config.vocab_size):
            raise ValueError("token id out of vocabulary range")
        return self.embedding[token_ids]

    def attn_qkv(
        self, layer: int, x: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pre-norm + Q/K/V projections + RoPE for one layer.

        Local to a rank: every input is token-wise. Returns GQA-shaped
        ``q [T, NH, DH]``, ``k [T, NKV, DH]``, ``v [T, NKV, DH]``.
        """
        w = self._layer(layer)
        cfg = self.config
        t = x.shape[0]
        h = rms_norm(x, w.attn_norm)
        q = (h @ w.wq).reshape(t, cfg.n_heads, cfg.head_dim)
        k = (h @ w.wk).reshape(t, cfg.n_kv_heads, cfg.head_dim)
        v = (h @ w.wv).reshape(t, cfg.n_kv_heads, cfg.head_dim)
        q = apply_rope(q, positions, freqs=self._rope_freqs)
        k = apply_rope(k, positions, freqs=self._rope_freqs)
        return q, k, v

    def attn_residual(self, layer: int, x: np.ndarray, attn_out: np.ndarray) -> np.ndarray:
        """Output projection + residual add: ``x + attn @ Wo``."""
        w = self._layer(layer)
        t = x.shape[0]
        width = self.config.n_heads * self.config.head_dim
        return x + attn_out.reshape(t, width) @ w.wo

    def ffn_residual(self, layer: int, x: np.ndarray) -> np.ndarray:
        """Pre-norm SwiGLU FFN + residual add."""
        w = self._layer(layer)
        h = rms_norm(x, w.ffn_norm)
        gate = w.w_gate.weight if isinstance(w.w_gate, QuantizedLinear) else w.w_gate
        up = w.w_up.weight if isinstance(w.w_up, QuantizedLinear) else w.w_up
        down = w.w_down.weight if isinstance(w.w_down, QuantizedLinear) else w.w_down
        return x + swiglu(h, gate, up, down)

    def unembed(self, x: np.ndarray) -> np.ndarray:
        """Final norm + unembedding: ``[T, D]`` -> ``[T, vocab]`` logits."""
        return rms_norm(x, self.final_norm) @ self.unembedding

    # ----------------------------- single-device ------------------------- #

    def forward(
        self,
        token_ids: np.ndarray,
        *,
        positions: np.ndarray | None = None,
        seq_ids: np.ndarray | None = None,
        block_size: int = 256,
    ) -> np.ndarray:
        """Single-device causal forward pass — the gold standard.

        Args:
            token_ids: ``[T]`` fused token ids.
            positions: absolute positions (default: storage order).
            seq_ids: sequence ids for fused batches (default: one sequence).
            block_size: flash kernel block size.

        Returns:
            ``[T, vocab]`` logits.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        t = token_ids.shape[0]
        if positions is None:
            positions = np.arange(t, dtype=np.int64)
        x = self.embed(token_ids)
        for layer in range(self.config.n_layers):
            q, k, v = self.attn_qkv(layer, x, positions)
            attn = flash_attention(
                q, k, v,
                q_pos=positions, k_pos=positions,
                q_seq=seq_ids, k_seq=seq_ids,
                causal=True, block_size=block_size,
            )
            x = self.attn_residual(layer, x, attn.out)
            x = self.ffn_residual(layer, x)
        return self.unembed(x)

    def _layer(self, layer: int) -> _LayerWeights:
        if not 0 <= layer < self.config.n_layers:
            raise ValueError(f"layer {layer} out of range [0, {self.config.n_layers})")
        return self.layers[layer]
