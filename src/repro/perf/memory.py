"""Per-rank HBM budget accounting.

CP's third motivation (§1) is KV-cache *capacity*: each rank stores only
its shard, so aggregate capacity grows with N. This module prices the
per-rank HBM budget — weights (mixed precision), KV cache (configurable
element size), and a peak-activation estimate — and derives max context /
max batch figures used by the capacity experiment and the planning example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.config import ModelConfig
from repro.perf.flops import weight_bytes
from repro.perf.hardware import HostSpec


@dataclass(frozen=True)
class MemoryBudget:
    """Per-CP-rank HBM breakdown (bytes).

    Attributes:
        hbm_total: aggregate host HBM.
        weights: model weights (TP-sharded across the host = full copy per
            CP rank).
        activations: peak prefill activation estimate.
        kv_available: bytes left for KV cache.
    """

    hbm_total: float
    weights: float
    activations: float

    @property
    def kv_available(self) -> float:
        return max(0.0, self.hbm_total - self.weights - self.activations)

    def max_context(
        self, config: ModelConfig, n_ranks: int, *, kv_element_bytes: float = 2.0, batch: int = 1
    ) -> int:
        """Max cacheable context per sequence for a CP-N deployment."""
        per_token = config.kv_bytes_per_token(kv_element_bytes)
        if per_token <= 0 or batch < 1:
            raise ValueError("invalid per-token bytes or batch")
        return int(self.kv_available / per_token / batch) * n_ranks

    def max_batch(
        self, config: ModelConfig, context: int, n_ranks: int, *, kv_element_bytes: float = 2.0
    ) -> int:
        """Max concurrent sequences of a given context (KV distribution
        lets batch grow with CP ranks — the paper's §1 bullet 3)."""
        per_seq = context * config.kv_bytes_per_token(kv_element_bytes) / n_ranks
        if per_seq <= 0:
            raise ValueError("context must be positive")
        return int(self.kv_available / per_seq)


def activation_bytes(
    config: ModelConfig,
    tokens_per_rank: float,
    *,
    element_bytes: float = 2.0,
    live_tensors: float = 6.0,
) -> float:
    """Peak prefill activation estimate: a handful of live ``[T_loc, D]``
    tensors (hidden states, norms, QKV, FFN intermediates amortized by
    chunking)."""
    return live_tensors * tokens_per_rank * config.model_dim * element_bytes


def rank_memory_budget(
    config: ModelConfig,
    host: HostSpec,
    *,
    tokens_per_rank: float = 0.0,
    ffn_weight_bytes: float = 1.0,
    other_weight_bytes: float = 2.0,
) -> MemoryBudget:
    """Build the per-rank budget for a model/host pair."""
    return MemoryBudget(
        hbm_total=host.gpus_per_host * host.gpu.hbm_capacity,
        weights=weight_bytes(
            config, ffn_bytes=ffn_weight_bytes, other_bytes=other_weight_bytes
        ),
        activations=activation_bytes(config, tokens_per_rank),
    )
