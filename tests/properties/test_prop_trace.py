"""Property tests: trace determinism and trace/metrics reconciliation.

The observability layer's two tier-1 invariants (PR 10):

- **Trace determinism** — every clock is simulated, so the recorded
  scheduling trace is a pure function of the configuration: running the
  same seeded workload twice through freshly built runtimes yields
  **byte-identical** JSONL serializations. Quantified over deployment
  shape (colocated / disaggregated), remedies, prefix cache, injected
  fault schedules, and multi-replica fleets with every routing policy.
- **Reconciliation** — every :class:`ServingMetrics` counter and stall
  total is *exactly* derivable from the trace: each hook site emits its
  event adjacent to the ``record_*`` call with the same values, so
  trace-derived sums equal the counters bit-for-bit (no tolerance).
  Fleet runs reconcile per replica through the scoped labels.
- **Explain exactness** — the TTFT decomposition is an exact partition:
  components sum (in insertion order) to the recorded TTFT *as floats*,
  and the TTFT the trace reconstructs equals the one the metrics
  recorded.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ReplicaFleet, make_router
from repro.cluster.router import ROUTING_POLICIES
from repro.core.engine import ContextParallelEngine
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel
from repro.obs import (
    RecordingTracer,
    dumps_jsonl,
    explain_ttft,
    format_explanation,
    reconcile,
    reconcile_fleet,
    request_ids,
    to_chrome,
    validate_chrome,
)
from repro.runtime import ContinuousBatchingRuntime, FaultPlan
from repro.serving.scheduler import ChunkedPrefillPolicy
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.replay import submit_scripts_to_runtime

MODEL = LlamaModel(tiny_config(), seed=0)
VOCAB = MODEL.config.vocab_size
SETTINGS = dict(max_examples=8, deadline=None)


@st.composite
def trace_case(draw):
    """One serving configuration: traffic x shape x remedy x faults x
    replica count. Returns a dict that fully determines a run, so the
    same case can be executed twice for the byte-identity check."""
    seed = draw(st.integers(0, 2**31 - 1))
    case = dict(
        seed=seed,
        n_replicas=draw(st.integers(1, 3)),
        policy=draw(st.sampled_from(ROUTING_POLICIES)),
        disaggregate=draw(st.booleans()),
        preemption=draw(st.sampled_from(["recompute", "trim", "swap"])),
        prefix_cache=draw(st.booleans()),
        chunk=draw(st.sampled_from([5, 16])),
        capacity=draw(st.sampled_from([None, 144])),
        think=draw(st.sampled_from([0.0, 2.5])),
        shared=draw(st.booleans()),
        sessions=draw(st.integers(2, 4)),
        turns=draw(st.integers(1, 2)),
        faults=None,
    )
    if draw(st.booleans()):
        case["faults"] = dict(
            seed=draw(st.integers(0, 2**16)),
            transfer_fail_rate=draw(st.sampled_from([0.0, 0.3])),
            swap_loss_rate=draw(st.sampled_from([0.0, 0.3])),
            pool_resets=draw(st.integers(0, 1)),
            deadline_s=draw(st.sampled_from([None, 25.0])),
        )
    return case


def _scripts(case):
    gen = WorkloadGenerator(VOCAB, seed=case["seed"])
    if case["shared"]:
        return gen.shared_prefix_traffic(
            n_system_prompts=2,
            n_fewshot_variants=2,
            conversations=case["sessions"],
            system_tokens=24,
            fewshot_tokens=8,
            unique_range=(4, 12),
            turns=case["turns"],
            response_range=(2, 5),
        )
    return [
        gen.conversation(
            sid, turns=case["turns"], first_prompt=24,
            followup_range=(4, 12), response_range=(2, 5),
        )
        for sid in range(case["sessions"])
    ]


def run_traced(case):
    """Build fresh engines/clocks/tracer, run the case, return
    ``(tracer, runtime_or_fleet, fleet_or_None, report)``."""
    plan = FaultPlan(**case["faults"]) if case["faults"] else None
    tracer = RecordingTracer()

    def make_runtime(replica_id=None):
        rt_tracer = (
            tracer if replica_id is None else tracer.scoped(replica=replica_id)
        )
        kwargs = dict(
            policy=ChunkedPrefillPolicy(
                chunk_tokens=case["chunk"],
                max_tokens_per_round=2 * case["chunk"],
                max_seqs_per_round=4,
            ),
            preemption=case["preemption"],
            prefix_cache=case["prefix_cache"],
            faults=plan,
            tracer=rt_tracer,
        )
        engine = ContextParallelEngine(
            MODEL, world_size=2, capacity_tokens=case["capacity"]
        )
        if case["disaggregate"]:
            decode = ContextParallelEngine(
                MODEL, world_size=2, capacity_tokens=case["capacity"]
            )
            return ContinuousBatchingRuntime(engine, decode_engine=decode, **kwargs)
        return ContinuousBatchingRuntime(engine, **kwargs)

    if case["n_replicas"] == 1:
        runtime = make_runtime()
        fleet = None
    else:
        fleet = ReplicaFleet.build(
            make_runtime,
            case["n_replicas"],
            router=make_router(case["policy"]),
            tracer=tracer,
        )
        runtime = fleet
    submit_scripts_to_runtime(runtime, _scripts(case), think_time_s=case["think"])
    report = runtime.run(max_steps=200_000)
    return tracer, runtime, fleet, report


class TestTraceDeterminism:
    @given(trace_case())
    @settings(**SETTINGS)
    def test_same_seed_trace_is_byte_identical(self, case):
        """Two fresh runs of one configuration serialize to the same
        bytes — JSONL and Chrome alike (the chrome object is derived
        deterministically from the events)."""
        first, _, _, _ = run_traced(case)
        second, _, _, _ = run_traced(case)
        a, b = dumps_jsonl(first.events), dumps_jsonl(second.events)
        assert a == b, (
            f"same-seed traces differ ({len(first.events)} vs "
            f"{len(second.events)} events) for case {case}"
        )
        assert to_chrome(first.events) == to_chrome(second.events)

    @given(trace_case())
    @settings(**SETTINGS)
    def test_chrome_export_validates(self, case):
        """Every recorded shape exports a structurally valid Chrome
        trace: parseable container, non-negative spans, and proper
        nesting on every (pid, tid) track."""
        tracer, _, _, _ = run_traced(case)
        problems = validate_chrome(to_chrome(tracer.events))
        assert problems == [], f"case {case}"


class TestReconciliation:
    @given(trace_case())
    @settings(**SETTINGS)
    def test_trace_reconciles_exactly_with_metrics(self, case):
        """Every counter / stall-second / TTFT-sample population in the
        metrics is exactly derivable from the trace (per replica in a
        fleet). Any drift means a hook site and a record_* call
        disagree."""
        tracer, runtime, fleet, report = run_traced(case)
        if fleet is None:
            drift = reconcile(tracer.events, runtime.metrics)
        else:
            drift = reconcile_fleet(tracer.events, report.metrics)
        assert drift == [], f"case {case}"


class TestExplain:
    @given(trace_case())
    @settings(**SETTINGS)
    def test_components_sum_exactly_to_recorded_ttft(self, case):
        """For every request that streamed a first token: the explain
        decomposition's components sum to its TTFT exactly (float
        equality, no tolerance), every component is non-negative up to
        the closing term, and the reconstruction renders."""
        tracer, _, _, report = run_traced(case)
        finished = {
            e.request_id
            for e in tracer.events
            if e.name == "finish" and "ttft" in e.attrs
        }
        recorded = {
            e.request_id: e.attrs["ttft"]
            for e in tracer.events
            if e.name == "finish" and "ttft" in e.attrs
        }
        if case["faults"] is None:
            assert finished, "a fault-free case completes every request"
        for rid in sorted(finished):
            bd = explain_ttft(tracer.events, rid)
            assert bd.total == bd.ttft, (
                f"request {rid}: components sum {bd.total!r} != "
                f"TTFT {bd.ttft!r} (case {case})"
            )
            assert bd.ttft == recorded[rid], (
                f"request {rid}: trace-reconstructed TTFT {bd.ttft!r} != "
                f"metrics-recorded {recorded[rid]!r}"
            )
            for name, v in bd.components.items():
                if name != "queue_wait":
                    assert v >= 0.0, f"negative {name} for request {rid}"
            text = format_explanation(tracer.events, rid)
            assert f"request {rid}" in text
            assert "TTFT" in text

    @given(trace_case())
    @settings(**SETTINGS)
    def test_every_request_is_reconstructible(self, case):
        """request_ids covers every id the report knows, and each one
        formats without error (finished or shed alike)."""
        tracer, _, _, report = run_traced(case)
        ids = set(request_ids(tracer.events))
        assert set(report.records) <= ids
        for rid in sorted(ids):
            assert format_explanation(tracer.events, rid)
