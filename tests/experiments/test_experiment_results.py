"""Tests for the ExperimentResult container."""

import pytest

from repro.experiments.base import ExperimentResult


class TestExperimentResult:
    def test_add_row_and_column(self):
        res = ExperimentResult("Table X", "demo", ["a", "b"])
        res.add_row(1, 2.0)
        res.add_row(3, 4.0)
        assert res.column("a") == [1, 3]
        assert res.column("b") == [2.0, 4.0]

    def test_row_width_checked(self):
        res = ExperimentResult("Table X", "demo", ["a", "b"])
        with pytest.raises(ValueError):
            res.add_row(1)

    def test_render_contains_everything(self):
        res = ExperimentResult("Figure 1", "demo", ["col"])
        res.add_row(1234.5)
        res.notes.append("a note")
        text = res.render()
        assert "Figure 1" in text
        assert "col" in text
        assert "1,234" in text or "1234" in text
        assert "note: a note" in text

    def test_render_markdown_table(self):
        res = ExperimentResult("Table 9", "demo", ["x", "y"])
        res.add_row("a", 0.5)
        md = res.render_markdown()
        assert md.startswith("### Table 9")
        assert "| x | y |" in md
        assert "| a | 0.500 |" in md

    def test_render_empty(self):
        res = ExperimentResult("Table 0", "empty", ["x"])
        assert "Table 0" in res.render()

    def test_unknown_column(self):
        res = ExperimentResult("T", "d", ["a"])
        with pytest.raises(ValueError):
            res.column("missing")
