"""Property-based tests: the engine is lossless under random schedules.

The strongest reproduction claim: for ANY interleaving of prefill turns and
decode steps across multiple sequences, the context-parallel engine's
logits equal a monolithic single-device forward over each sequence's full
history.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import ContextParallelEngine
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel

MODEL = LlamaModel(tiny_config(n_layers=1, model_dim=32, n_heads=4, n_kv_heads=2), seed=2)
VOCAB = MODEL.config.vocab_size


@st.composite
def schedule(draw):
    """A random multi-turn schedule over 1-2 sequences."""
    world = draw(st.integers(1, 4))
    n_seqs = draw(st.integers(1, 2))
    ops = []
    for _ in range(draw(st.integers(1, 5))):
        kind = draw(st.sampled_from(["prefill", "decode"]))
        if kind == "prefill":
            sid = draw(st.integers(0, n_seqs - 1))
            length = draw(st.integers(1, 10))
            tokens = [draw(st.integers(0, VOCAB - 1)) for _ in range(length)]
            ops.append(("prefill", sid, tokens))
        else:
            sid = draw(st.integers(0, n_seqs - 1))
            ops.append(("decode", sid, [draw(st.integers(0, VOCAB - 1))]))
    return world, n_seqs, ops


class TestEngineScheduleProperty:
    @given(schedule())
    @settings(max_examples=20, deadline=None)
    def test_any_schedule_is_lossless(self, case):
        world, n_seqs, ops = case
        engine = ContextParallelEngine(MODEL, world_size=world)
        history: dict[int, list[int]] = {sid: [] for sid in range(n_seqs)}

        for kind, sid, tokens in ops:
            if kind == "decode" and not history[sid]:
                continue  # cannot decode before any prefill
            if kind == "prefill":
                out = engine.prefill({sid: np.array(tokens, dtype=np.int64)})
                history[sid].extend(tokens)
                ref = MODEL.forward(np.array(history[sid]))
                np.testing.assert_allclose(
                    out.logits[sid], ref[-len(tokens):], atol=1e-8
                )
            else:
                step = engine.decode({sid: tokens[0]})
                history[sid].append(tokens[0])
                ref = MODEL.forward(np.array(history[sid]))
                np.testing.assert_allclose(step.logits[sid], ref[-1], atol=1e-8)

    @given(schedule())
    @settings(max_examples=15, deadline=None)
    def test_cache_conservation(self, case):
        """Per-rank cached tokens always sum to each sequence's history."""
        world, n_seqs, ops = case
        engine = ContextParallelEngine(MODEL, world_size=world)
        lengths = {sid: 0 for sid in range(n_seqs)}
        for kind, sid, tokens in ops:
            if kind == "decode" and lengths[sid] == 0:
                continue
            if kind == "prefill":
                engine.prefill({sid: np.array(tokens, dtype=np.int64)})
                lengths[sid] += len(tokens)
            else:
                engine.decode({sid: tokens[0]})
                lengths[sid] += 1
            for check_sid, expected in lengths.items():
                assert sum(engine.cached_tokens(check_sid)) == expected
