"""Unit tests: the radix prefix index (tree structure, LRU, pins)."""

import numpy as np
import pytest

from repro.kvcache.prefix_index import PrefixIndex


def toks(*ids):
    return np.asarray(ids, dtype=np.int64)


class TestInsertAndMatch:
    def test_empty_index_matches_nothing(self):
        idx = PrefixIndex()
        assert idx.match(toks(1, 2, 3)) == (0, None)
        assert len(idx) == 0

    def test_exact_and_partial_match(self):
        idx = PrefixIndex()
        idx.insert(0, toks(1, 2, 3, 4))
        assert idx.match(toks(1, 2, 3, 4)) == (4, 0)
        assert idx.match(toks(1, 2, 3, 4, 5, 6)) == (4, 0)
        assert idx.match(toks(1, 2, 9)) == (2, 0)
        assert idx.match(toks(9, 1, 2)) == (0, None)

    def test_zero_length_insert_is_noop(self):
        idx = PrefixIndex()
        idx.insert(0, toks())
        assert 0 not in idx
        assert idx.match(toks(1)) == (0, None)

    def test_extension_reinsert_is_idempotent(self):
        idx = PrefixIndex()
        idx.insert(0, toks(1, 2))
        idx.insert(0, toks(1, 2, 3, 4))
        idx.insert(0, toks(1, 2, 3, 4))
        assert idx.anchor_length(0) == 4
        assert idx.match(toks(1, 2, 3, 4, 7)) == (4, 0)

    def test_divergent_histories_split_nodes(self):
        idx = PrefixIndex()
        idx.insert(0, toks(1, 2, 3, 4))
        idx.insert(1, toks(1, 2, 7, 8))
        # the shared [1, 2] node serves both; deeper nodes are exclusive
        length, donor = idx.match(toks(1, 2))
        assert length == 2 and donor in (0, 1)
        assert idx.match(toks(1, 2, 3, 9))[0] == 3
        assert idx.match(toks(1, 2, 7, 8, 9)) == (4, 1)

    def test_donor_prefers_most_recently_used(self):
        idx = PrefixIndex()
        idx.insert(0, toks(1, 2, 3))
        idx.insert(1, toks(1, 2, 3))
        idx.touch(0)
        idx.touch(1)
        assert idx.match(toks(1, 2, 3))[1] == 1
        idx.touch(0)
        assert idx.match(toks(1, 2, 3))[1] == 0

    def test_match_rejects_bad_shape(self):
        idx = PrefixIndex()
        with pytest.raises(ValueError):
            idx.match(np.zeros((2, 2), dtype=np.int64))


class TestRemoveAndTrim:
    def test_remove_forgets_anchor(self):
        idx = PrefixIndex()
        idx.insert(0, toks(1, 2, 3))
        idx.remove(0)
        assert idx.match(toks(1, 2, 3)) == (0, None)
        assert 0 not in idx
        idx.remove(0)  # idempotent

    def test_remove_keeps_other_holders(self):
        idx = PrefixIndex()
        idx.insert(0, toks(1, 2, 3, 4))
        idx.insert(1, toks(1, 2, 3))
        idx.remove(0)
        assert idx.match(toks(1, 2, 3, 4)) == (3, 1)

    def test_trim_shortens_coverage(self):
        idx = PrefixIndex()
        idx.insert(0, toks(1, 2, 3, 4, 5))
        idx.trim(0, 2)
        assert idx.anchor_length(0) == 2
        assert idx.match(toks(1, 2, 3, 4, 5)) == (2, 0)

    def test_trim_mid_edge_keeps_other_holder_full(self):
        idx = PrefixIndex()
        idx.insert(0, toks(1, 2, 3, 4))
        idx.insert(1, toks(1, 2, 3, 4))
        idx.trim(0, 3)
        assert idx.match(toks(1, 2, 3, 4)) == (4, 1)
        # donor for the 3-token prefix can be either anchor
        length, donor = idx.match(toks(1, 2, 3, 9))
        assert length == 3 and donor in (0, 1)

    def test_trim_to_zero_removes(self):
        idx = PrefixIndex()
        idx.insert(0, toks(1, 2))
        idx.trim(0, 0)
        assert 0 not in idx

    def test_trim_then_regrow_different_suffix(self):
        idx = PrefixIndex()
        idx.insert(0, toks(1, 2, 3, 4))
        idx.trim(0, 2)
        idx.insert(0, toks(1, 2, 7, 8))
        assert idx.match(toks(1, 2, 7, 8)) == (4, 0)
        assert idx.match(toks(1, 2, 3, 4))[0] == 2

    def test_trim_longer_than_anchor_is_noop(self):
        idx = PrefixIndex()
        idx.insert(0, toks(1, 2))
        idx.trim(0, 5)
        assert idx.anchor_length(0) == 2


class TestPinsAndLru:
    def test_pin_refcounts(self):
        idx = PrefixIndex()
        idx.insert(0, toks(1))
        idx.pin(0)
        idx.pin(0)
        idx.unpin(0)
        assert idx.pinned(0)
        idx.unpin(0)
        assert not idx.pinned(0)
        idx.unpin(0)  # over-unpin is a no-op
        assert not idx.pinned(0)

    def test_unpin_unknown_is_noop(self):
        idx = PrefixIndex()
        idx.unpin(99)
        assert not idx.pinned(99)

    def test_lru_clock_monotonic(self):
        idx = PrefixIndex()
        idx.insert(0, toks(1))
        idx.insert(1, toks(2))
        assert idx.last_used(0) == 0
        idx.touch(0)
        idx.touch(1)
        assert 0 < idx.last_used(0) < idx.last_used(1)

    def test_remove_clears_lru_but_pins_survive(self):
        """Pins belong to borrowers (pin/unpin pairs bracket a request's
        lifetime), so removing the anchor must not strip them — a seq id
        reused by a new conversation would otherwise lose the protection
        a still-live borrower of the old incarnation paid for."""
        idx = PrefixIndex()
        idx.insert(0, toks(1))
        idx.pin(0)
        idx.touch(0)
        idx.remove(0)
        assert idx.pinned(0)
        assert idx.last_used(0) == 0
        assert idx.anchors() == []
        idx.unpin(0)  # the borrower finishes: balance restored
        assert not idx.pinned(0)

    def test_pin_balance_across_anchor_reuse(self):
        """Borrower A of the old incarnation unpinning must not strip
        borrower B's pin on the new incarnation of the same seq id."""
        idx = PrefixIndex()
        idx.insert(5, toks(1, 2))
        idx.pin(5)  # borrower A
        idx.remove(5)  # old incarnation evicted
        idx.insert(5, toks(3, 4))  # new conversation reuses the id
        idx.pin(5)  # borrower B
        idx.unpin(5)  # A finishes
        assert idx.pinned(5)  # B's protection intact
        idx.unpin(5)  # B finishes
        assert not idx.pinned(5)
