"""Token sampling from logits."""

from __future__ import annotations

import numpy as np


def sample_greedy(logits: np.ndarray) -> np.ndarray:
    """Argmax sampling. ``logits``: ``[..., vocab]`` -> int64 ``[...]``."""
    logits = np.asarray(logits)
    if logits.ndim < 1:
        raise ValueError("logits must have a vocab axis")
    return np.argmax(logits, axis=-1).astype(np.int64)


def sample_temperature(
    logits: np.ndarray, temperature: float, rng: np.random.Generator
) -> np.ndarray:
    """Softmax sampling at the given temperature.

    Args:
        logits: ``[B, vocab]`` (2-D only, for clarity).
        temperature: > 0; lower is greedier.
        rng: NumPy generator for determinism in tests.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be > 0, got {temperature}")
    logits = np.asarray(logits, dtype=np.float64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be [B, vocab], got {logits.shape}")
    z = logits / temperature
    z -= z.max(axis=-1, keepdims=True)
    probs = np.exp(z)
    probs /= probs.sum(axis=-1, keepdims=True)
    return np.array(
        [rng.choice(probs.shape[1], p=probs[b]) for b in range(probs.shape[0])],
        dtype=np.int64,
    )
