"""Render every experiment into one report (EXPERIMENTS.md body)."""

from __future__ import annotations

from repro.experiments import (
    ablation_allgather,
    ablation_sharding,
    capacity_scaling,
    disaggregation,
    fig6_prefill_scaling,
    fig7_cp_vs_tp,
    fig8_million_token,
    fig10_heuristic,
    gqa_sensitivity,
    pp_vs_cp,
    serving_load,
    table2_comm,
    table4_fig9_partial_prefill,
    table5_breakdown,
    table6_ttft_ttit,
    table7_parallelism,
    table8_decode_attention,
)
from repro.experiments.base import ExperimentResult


def run_all(*, include_fig10: bool = True) -> list[ExperimentResult]:
    """Regenerate every table and figure (GTT platform)."""
    results = [table2_comm.run()]
    results.extend(fig6_prefill_scaling.run_both())
    results.append(fig7_cp_vs_tp.run())
    results.append(fig8_million_token.run())
    results.append(table4_fig9_partial_prefill.run())
    results.append(table5_breakdown.run())
    results.append(table6_ttft_ttit.run())
    results.append(table7_parallelism.run())
    results.append(table8_decode_attention.run())
    if include_fig10:
        results.append(fig10_heuristic.run())
    results.append(ablation_sharding.run())
    results.append(ablation_allgather.run())
    return results


def run_extensions() -> list[ExperimentResult]:
    """Regenerate the extension experiments (beyond the paper's tables)."""
    return [
        capacity_scaling.run(),
        gqa_sensitivity.run(),
        disaggregation.run(),
        pp_vs_cp.run(),
        serving_load.run(),
    ]


def render_report(
    results: list[ExperimentResult] | None = None,
    *,
    markdown: bool = True,
    include_extensions: bool = True,
) -> str:
    """Full report text for all experiments."""
    if results is None:
        results = run_all()
        if include_extensions:
            results = results + run_extensions()
    chunks = []
    for res in results:
        chunks.append(res.render_markdown() if markdown else res.render())
        chunks.append("")
    return "\n".join(chunks)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_report(markdown=False))


if __name__ == "__main__":  # pragma: no cover
    main()
