"""Shard-level causal skip predicate for the ring hot path.

At every ring step each rank computes a *partial* attention between its
resident queries and one origin rank's payload. Under the causal mask a
large fraction of those partials are provably all-masked — every key in the
shard sits strictly after every query of the same sequence, or the payload
is pure padding (``PAD_SEQ``). Computing such a partial produces exactly the
identity element of merge attention (``O = 0``, ``LSE = -inf``), so the ring
algorithms can skip the kernel call outright and append
:meth:`repro.attention.flash.AttentionResult.empty` instead, bit-for-bit
unchanged output.

The predicate only needs two per-shard summaries, each computed **once**
before the ring starts (the origin metadata travels implicitly with the
ring schedule — ``source_rank_at_step`` says whose summary applies):

- queries: ``{seq_id: max position}`` over non-pad tokens,
- keys:    ``{seq_id: min position}`` over non-pad tokens.

A partial is visible iff some sequence id appears on both sides with
``min(k_pos) <= max(q_pos)``. This is exact for the default causal mask; a
custom ``mask_fn`` can only *remove* visibility, so callers with a mask
override either skip conservatively (never) or evaluate the mask — the ring
algorithms take the conservative route.
"""

from __future__ import annotations

import numpy as np

from repro.attention.masks import PAD_SEQ


def query_reach(positions: np.ndarray, seq_ids: np.ndarray | None) -> dict[int, int]:
    """Per-sequence maximum query position over non-pad tokens.

    Args:
        positions: ``[T]`` absolute positions.
        seq_ids: ``[T]`` sequence ids (``None`` = all sequence 0).

    Returns:
        ``{seq_id: max position}``; empty for an all-pad (or empty) shard.
    """
    return _reach(positions, seq_ids, np.maximum)


def kv_reach(positions: np.ndarray, seq_ids: np.ndarray | None) -> dict[int, int]:
    """Per-sequence minimum key position over non-pad tokens (see above)."""
    return _reach(positions, seq_ids, np.minimum)


def _reach(positions: np.ndarray, seq_ids: np.ndarray | None, op) -> dict[int, int]:
    positions = np.asarray(positions)
    if positions.size == 0:
        return {}
    if seq_ids is None:
        seq_ids = np.zeros(positions.shape[0], dtype=np.int64)
    seq_ids = np.asarray(seq_ids)
    out: dict[int, int] = {}
    for sid in np.unique(seq_ids):
        if sid == PAD_SEQ:
            continue
        extreme = op.reduce(positions[seq_ids == sid])
        out[int(sid)] = int(extreme)
    return out


def partial_fully_masked(q_reach: dict[int, int], k_reach: dict[int, int]) -> bool:
    """True iff the causal mask between the summarised shards is all-False.

    Args:
        q_reach: output of :func:`query_reach` for the query shard.
        k_reach: output of :func:`kv_reach` for the key shard.
    """
    for sid, q_max in q_reach.items():
        k_min = k_reach.get(sid)
        if k_min is not None and k_min <= q_max:
            return False
    return True


def shard_fully_masked(
    q_pos: np.ndarray,
    k_pos: np.ndarray,
    q_seq: np.ndarray | None = None,
    k_seq: np.ndarray | None = None,
    *,
    causal: bool = True,
) -> bool:
    """O(Tq + Tk) test that ``attention_mask(...)`` would be all-False.

    Convenience wrapper combining :func:`query_reach`, :func:`kv_reach`
    and :func:`partial_fully_masked` for one-off (non-ring) callers; the
    ring algorithms precompute the two summaries instead so each shard is
    scanned once, not once per ring step.
    """
    q = query_reach(q_pos, q_seq)
    k = kv_reach(k_pos, k_seq)
    if not causal:
        # Any shared non-pad sequence id means at least one visible pair.
        return all(sid not in k for sid in q)
    return partial_fully_masked(q, k)
