"""Tests for the per-rank KV cache."""

import numpy as np
import pytest

from repro.kvcache.cache import CacheCapacityError, RankKVCache


def make_cache(**kwargs):
    return RankKVCache(n_layers=2, n_kv_heads=2, head_dim=4, **kwargs)


def kv_chunk(n, value=1.0):
    k = np.full((n, 2, 4), value)
    v = np.full((n, 2, 4), -value)
    return k, v


class TestAppendGet:
    def test_roundtrip(self):
        cache = make_cache()
        k, v = kv_chunk(3)
        cache.append(0, 7, k, v, np.array([0, 1, 2]))
        got = cache.get(0)
        assert len(got) == 3
        np.testing.assert_array_equal(got.k, k)
        np.testing.assert_array_equal(got.v, v)
        np.testing.assert_array_equal(got.positions, [0, 1, 2])
        np.testing.assert_array_equal(got.seq_ids, [7, 7, 7])

    def test_chunked_appends_concatenate(self):
        cache = make_cache()
        cache.append(0, 1, *kv_chunk(2, 1.0), np.array([0, 1]))
        cache.append(0, 1, *kv_chunk(1, 2.0), np.array([2]))
        got = cache.get(0)
        assert len(got) == 3
        np.testing.assert_array_equal(got.positions, [0, 1, 2])
        assert got.k[2, 0, 0] == 2.0

    def test_layers_independent(self):
        cache = make_cache()
        cache.append(0, 1, *kv_chunk(2), np.array([0, 1]))
        cache.append(1, 1, *kv_chunk(3), np.array([0, 1, 2]))
        assert len(cache.get(0)) == 2
        assert len(cache.get(1)) == 3

    def test_sequence_filter(self):
        cache = make_cache()
        cache.append(0, 1, *kv_chunk(2), np.array([0, 1]))
        cache.append(0, 2, *kv_chunk(4), np.array([0, 1, 2, 3]))
        assert len(cache.get(0, [1])) == 2
        assert len(cache.get(0, [2])) == 4
        assert len(cache.get(0, [1, 2])) == 6
        assert len(cache.get(0, [99])) == 0

    def test_empty_get(self):
        cache = make_cache()
        got = cache.get(0)
        assert len(got) == 0
        assert got.k.shape == (0, 2, 4)

    def test_zero_token_append_noop(self):
        cache = make_cache()
        cache.append(0, 1, *kv_chunk(0), np.zeros(0, dtype=np.int64))
        assert cache.total_tokens(0) == 0


class TestCapacity:
    def test_oom_raised(self):
        cache = make_cache(capacity_tokens=8, block_size=4)
        cache.append(0, 1, *kv_chunk(8), np.arange(8))
        with pytest.raises(CacheCapacityError):
            cache.append(0, 2, *kv_chunk(1), np.array([0]))

    def test_only_layer0_charged(self):
        """All layers store the same tokens; capacity is counted once."""
        cache = make_cache(capacity_tokens=4, block_size=4)
        cache.append(0, 1, *kv_chunk(4), np.arange(4))
        cache.append(1, 1, *kv_chunk(4), np.arange(4))  # no extra charge
        assert cache.free_tokens() == 0

    def test_drop_releases(self):
        cache = make_cache(capacity_tokens=8, block_size=4)
        cache.append(0, 1, *kv_chunk(8), np.arange(8))
        cache.drop(1)
        assert cache.free_tokens() == 8
        cache.append(0, 2, *kv_chunk(8), np.arange(8))

    def test_unbounded_by_default(self):
        cache = make_cache()
        assert cache.free_tokens() is None


class TestBookkeeping:
    def test_tokens_and_totals(self):
        cache = make_cache()
        cache.append(0, 1, *kv_chunk(2), np.array([0, 1]))
        cache.append(0, 2, *kv_chunk(5), np.arange(5))
        assert cache.tokens(1) == 2
        assert cache.tokens(2) == 5
        assert cache.total_tokens(0) == 7
        assert cache.sequence_ids() == [1, 2]

    def test_drop_all_layers(self):
        cache = make_cache()
        for layer in range(2):
            cache.append(layer, 1, *kv_chunk(2), np.array([0, 1]))
        cache.drop(1)
        assert cache.tokens(1, layer=0) == 0
        assert cache.tokens(1, layer=1) == 0


class TestDropTail:
    def test_drops_positions_at_or_above_cutoff(self):
        cache = make_cache()
        for layer in range(2):
            # interleaved positions, as ring sharding produces
            cache.append(layer, 1, *kv_chunk(3, 1.0), np.array([0, 5, 2]))
            cache.append(layer, 1, *kv_chunk(2, 2.0), np.array([7, 3]))
        freed = cache.drop_tail(1, from_pos=4)
        assert freed == 2  # positions 5 and 7 at layer 0
        for layer in range(2):
            got = cache.get(layer, [1])
            assert sorted(got.positions.tolist()) == [0, 2, 3]
        # prefix values survive intact
        got = cache.get(0, [1])
        assert got.k[got.positions.tolist().index(3), 0, 0] == 2.0

    def test_whole_chunk_dropped(self):
        cache = make_cache()
        cache.append(0, 1, *kv_chunk(2), np.array([0, 1]))
        cache.append(0, 1, *kv_chunk(2), np.array([4, 5]))
        assert cache.drop_tail(1, from_pos=2) == 2
        assert cache.tokens(1) == 2

    def test_everything_dropped_removes_stream(self):
        cache = make_cache()
        cache.append(0, 1, *kv_chunk(3), np.array([0, 1, 2]))
        assert cache.drop_tail(1, from_pos=0) == 3
        assert cache.tokens(1) == 0
        assert cache.sequence_ids() == []

    def test_nothing_to_drop(self):
        cache = make_cache()
        cache.append(0, 1, *kv_chunk(2), np.array([0, 1]))
        assert cache.drop_tail(1, from_pos=2) == 0
        assert cache.drop_tail(99, from_pos=0) == 0
        assert cache.tokens(1) == 2

    def test_allocator_blocks_returned(self):
        cache = make_cache(capacity_tokens=32, block_size=4)
        cache.append(0, 1, *kv_chunk(10), np.arange(10))
        before = cache.free_tokens()
        freed = cache.drop_tail(1, from_pos=3)
        assert freed == 7
        assert cache.free_tokens() == before + 7
        # the freed WHOLE blocks are claimable by another sequence (the
        # slack in seq 1's kept partial block is not)
        assert cache.can_append({2: 7 * 4})
        assert not cache.can_append({2: 7 * 4 + 1})

    def test_quantized_chunks_sliced(self):
        cache = make_cache(quantized=True)
        k, v = kv_chunk(4, 3.0)
        cache.append(0, 1, k, v, np.array([0, 1, 2, 3]))
        assert cache.drop_tail(1, from_pos=2) == 2
        got = cache.get(0, [1])
        np.testing.assert_array_equal(got.positions, [0, 1])
        np.testing.assert_allclose(got.k, k[:2], rtol=1e-2)

    def test_validation(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.drop_tail(1, from_pos=-1)


class TestValidation:
    def test_bad_layer(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.append(5, 1, *kv_chunk(1), np.array([0]))
        with pytest.raises(ValueError):
            cache.get(-1)

    def test_bad_shapes(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.append(0, 1, np.zeros((2, 3, 4)), np.zeros((2, 3, 4)), np.arange(2))
        with pytest.raises(ValueError):
            k, v = kv_chunk(2)
            cache.append(0, 1, k, v, np.arange(3))
