"""Serving layer: multi-turn sessions, batching, and metrics.

The paper frames CP inference around multi-turn online messaging (§3.3):
full prefill on the first prompt, auto-regressive decode for the response,
then *partial prefill* for every follow-up against the persistent sharded
KV cache. This package provides that serving loop on top of
:class:`repro.core.engine.ContextParallelEngine`:

- :mod:`repro.serving.request` — request/turn records.
- :mod:`repro.serving.session` — :class:`ChatSession`, one conversation's
  prefill/decode driver with cache-hit accounting.
- :mod:`repro.serving.scheduler` — fused variable-length batch assembly
  (Figure 1's fused inputs) over a FIFO of requests, plus the
  chunk-granularity round packing the continuous-batching runtime
  (:mod:`repro.runtime`) schedules with.
- :mod:`repro.serving.metrics` — TTFT/TTIT/cache-hit aggregation and
  preemption/eviction accounting.
"""

from repro.serving.metrics import ServingMetrics
from repro.serving.request import PrefillRequest, TurnRecord
from repro.serving.scheduler import (
    ChunkAssignment,
    ChunkedPrefillPolicy,
    FusedBatch,
    Scheduler,
)
from repro.serving.session import ChatSession

__all__ = [
    "ChatSession",
    "ChunkAssignment",
    "ChunkedPrefillPolicy",
    "FusedBatch",
    "PrefillRequest",
    "Scheduler",
    "ServingMetrics",
    "TurnRecord",
]
