"""Merge attention (paper Appendix B, Equation 4).

Each CP rank ends a ring sweep holding N partial attention results
``(O_s, LSE_s)`` for its queries — one per KV shard origin ``s``. The exact
attention over the full context is their LSE-weighted combination:

    O = sum_s O_s * exp(LSE_s - LSE_max) / sum_s exp(LSE_s - LSE_max)

This module wraps :class:`repro.attention.online_softmax.OnlineSoftmaxState`
with the list-of-partials interface the ring algorithms use, mirroring the
open-sourced xformers ``merge_attentions`` operator the paper cites.
"""

from __future__ import annotations

import numpy as np

from repro.attention.flash import AttentionResult
from repro.attention.online_softmax import OnlineSoftmaxState


def merge_partials(partials: list[AttentionResult]) -> AttentionResult:
    """Merge partial attention results over disjoint KV shards.

    Args:
        partials: non-empty list of :class:`AttentionResult` computed for the
            *same* queries against disjoint key/value sets. Empty partials
            (``LSE = -inf``) are valid and act as identity elements.

    Returns:
        Exact combined :class:`AttentionResult`.

    Raises:
        ValueError: on empty input or shape mismatches between partials.
    """
    if not partials:
        raise ValueError("merge_partials requires at least one partial result")
    first = partials[0]
    state = OnlineSoftmaxState(out_shape=first.out.shape, lse_shape=first.lse.shape)
    for partial in partials:
        if partial.out.shape != first.out.shape or partial.lse.shape != first.lse.shape:
            raise ValueError(
                f"partial shapes differ: {partial.out.shape}/{partial.lse.shape} "
                f"vs {first.out.shape}/{first.lse.shape}"
            )
        state.update(partial.out, partial.lse)
    out, lse = state.finalize()
    return AttentionResult(out=out, lse=lse)


def merge_attention(outs: list[np.ndarray], lses: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Array-level convenience wrapper around :func:`merge_partials`."""
    if len(outs) != len(lses):
        raise ValueError(f"got {len(outs)} outputs but {len(lses)} LSEs")
    merged = merge_partials([AttentionResult(out=o, lse=l) for o, l in zip(outs, lses)])
    return merged.out, merged.lse
