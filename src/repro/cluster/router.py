"""Routing policies for the multi-replica fleet.

A router answers one question: *which replica serves this new
conversation?* Every policy here is deterministic — same construction,
same submission order, same replica states ⇒ the same placements — so a
routed run is as replayable as a single-runtime one, and the fleet's
serving-exactness property can quantify over policies the way the
runtime's quantifies over remedies.

Policies (CLI names in parentheses):

- :class:`RoundRobinRouter` (``round-robin``): cycle over non-draining
  replicas in id order. The classic load-spreading baseline — and the
  baseline prefix-affinity routing must beat on warm TTFT and hit rate
  for shared-prefix traffic (the cluster-routing experiment's claim).
- :class:`LeastLoadedRouter` (``least-loaded``): fewest queued prefill
  tokens; ties broken by least cumulative busy time, then lowest id.
- :class:`PrefixAffinityRouter` (``prefix``): the SGLang
  cache-aware-routing / Mooncake global-scheduler design. Each replica
  is scored by how much of the conversation's first prompt its radix
  prefix index already holds, discounted by load and queue depth::

      score(r) = matched(r)
                 - load_weight  * (queued_tokens(r) + busy_time(r))
                 - queue_weight * queue_depth(r)

  ``matched(r)`` is the longer of (a) the replica's *live* radix-index
  match (:meth:`ContinuousBatchingRuntime.prefix_match_len`) and (b) the
  router's own *shadow* estimate — a per-replica
  :class:`repro.kvcache.prefix_index.PrefixIndex` over the prompts it
  already placed there. The shadow is what makes affinity work for
  traffic submitted before any replica has run a round (the common
  simulated case) and mirrors how production routers approximate remote
  cache state instead of querying it synchronously. ``queued_tokens``
  (prefill tokens) and ``busy_time`` (simulated busy seconds) are summed
  as abstract work units: all replicas share one clock model, so the
  comparison is fair even though the units differ.

Tie-break, pinned by ``tests/cluster/test_router.py``: every policy
resolves equal choices toward the **lowest replica id** (round-robin's
"tie" is its cursor start, which begins at id order).
"""

from __future__ import annotations

import numpy as np

from repro.kvcache.prefix_index import PrefixIndex

#: CLI / config names of the built-in policies.
ROUTING_POLICIES = ("prefix", "round-robin", "least-loaded")


class Router:
    """Interface a fleet routing policy implements.

    ``place`` only ever sees replicas that accept new conversations
    (the fleet filters draining ones); ``placed`` is the notification
    hook the fleet calls with the winner so stateful policies (shadow
    indexes, cursors) can update.
    """

    name: str = "base"

    def place(self, tokens: np.ndarray, replicas: list) -> object:
        """Pick one of ``replicas`` for a conversation opening with
        ``tokens``. Must be deterministic in (tokens, replica states)."""
        raise NotImplementedError

    def placed(self, replica, tokens: np.ndarray) -> None:
        """Record that the fleet placed ``tokens`` on ``replica``."""

    def forget(self, replica) -> None:
        """Drop any per-replica routing state (replica removed)."""

    def scores(self, tokens: np.ndarray, replicas: list) -> dict:
        """Per-replica placement scores for the trace's ``route`` events
        (empty when the policy is not score-based). Must be side-effect
        free: the fleet only calls this when a tracer is recording, so
        a scored placement and an unscored one must behave identically."""
        return {}


class RoundRobinRouter(Router):
    """Cycle over eligible replicas in id order, ignoring all state."""

    name = "round-robin"

    def __init__(self):
        self._cursor = 0

    def place(self, tokens, replicas):
        choice = replicas[self._cursor % len(replicas)]
        self._cursor += 1
        return choice


class LeastLoadedRouter(Router):
    """Fewest queued prefill tokens; ties: least busy time, lowest id."""

    name = "least-loaded"

    def place(self, tokens, replicas):
        return min(
            replicas, key=lambda r: (r.queued_tokens(), r.busy_time(), r.id)
        )


class PrefixAffinityRouter(Router):
    """Score replicas by prefix-cache affinity, balanced against load.

    Args:
        load_weight: tokens of match length a unit of load (queued
            prefill tokens + simulated busy seconds) cancels.
        queue_weight: tokens of match length one queued request cancels
            (queue depth is the coarser, faster-moving congestion
            signal, so it is weighted harder than raw tokens).
    """

    name = "prefix"

    def __init__(self, *, load_weight: float = 0.25, queue_weight: float = 4.0):
        if load_weight < 0 or queue_weight < 0:
            raise ValueError("router weights must be >= 0")
        self.load_weight = load_weight
        self.queue_weight = queue_weight
        self._shadow: dict[int, PrefixIndex] = {}
        self._inserts = 0

    def match_len(self, replica, tokens) -> int:
        """Best-known resident prefix length of ``tokens`` on ``replica``
        (max of the live radix index and the router's shadow)."""
        live = replica.match_len(tokens)
        shadow = self._shadow.get(replica.id)
        if shadow is None:
            return live
        return max(live, shadow.match(tokens)[0])

    def score(self, replica, tokens) -> float:
        """The documented affinity-minus-load score (higher is better)."""
        return (
            self.match_len(replica, tokens)
            - self.load_weight * (replica.queued_tokens() + replica.busy_time())
            - self.queue_weight * replica.queue_depth()
        )

    def place(self, tokens, replicas):
        # max score; ties toward the lowest replica id
        return max(replicas, key=lambda r: (self.score(r, tokens), -r.id))

    def scores(self, tokens, replicas):
        return {r.id: self.score(r, tokens) for r in replicas}

    def placed(self, replica, tokens) -> None:
        shadow = self._shadow.setdefault(replica.id, PrefixIndex())
        # each placement anchors under a fresh synthetic id: the shadow
        # only ever answers "how many of these tokens has this replica
        # seen", so holders never need to track eviction
        self._inserts += 1
        shadow.insert(self._inserts, np.asarray(tokens, dtype=np.int64))

    def forget(self, replica) -> None:
        self._shadow.pop(replica.id, None)


def make_router(policy: str) -> Router:
    """Build a router from its CLI name (see :data:`ROUTING_POLICIES`)."""
    if policy == "prefix":
        return PrefixAffinityRouter()
    if policy == "round-robin":
        return RoundRobinRouter()
    if policy == "least-loaded":
        return LeastLoadedRouter()
    raise ValueError(
        f"unknown routing policy {policy!r}; expected one of {ROUTING_POLICIES}"
    )
