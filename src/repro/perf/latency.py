"""Analytic TTFT/TTIT simulator for CP and multi-node TP.

Implements the paper's own performance analysis (§3.4, Appendices A/C) as an
executable model:

- **Compute** is roofline: GEMM FLOPs over achieved GEMM rate, exact causal
  attention FLOPs over achieved attention rate, both divided across ranks
  (load-balanced sharding makes the division exact, §3.5.1).
- **Ring communication** is alpha-beta per hop; a ring step's wall time is
  ``max(attention chunk, SendRecv)`` — communication hides under compute
  exactly when Equations (2)/(3) say it should.
- **pass-Q All2All** and the TP baseline's **AllReduce** sit on the critical
  path (Appendix C), so they add, never hide.
- **Decode** is memory-bound: weight streaming plus per-layer KV reads with
  a kernel-launch floor, matching Table 8's measured attention ops.

All constants live in :mod:`repro.perf.hardware` with their calibration
provenance; regression tests pin the model against the paper's anchors.
"""

from __future__ import annotations

from repro.core.heuristics import HeuristicConfig, RingAlgo
from repro.model.config import ModelConfig
from repro.perf.breakdown import DecodeLatency, PrefillLatency
from repro.perf.flops import attention_flops, gemm_flops, weight_bytes
from repro.perf.hardware import HostSpec
from repro.perf.roofline import all2all_bytes, kv_bytes, q_bytes


class LatencySimulator:
    """Closed-form latency model for one (model, host platform) pair.

    Args:
        config: model architecture (use :func:`repro.model.llama3_405b_config`
            for paper-faithful numbers).
        host: platform spec (:func:`repro.perf.gtt_host` or
            :func:`repro.perf.gti_host`).
        element_bytes: wire/KV element size ``e`` (2 = bf16).
    """

    def __init__(self, config: ModelConfig, host: HostSpec, *, element_bytes: float = 2.0):
        self.config = config
        self.host = host
        self.element_bytes = element_bytes

    # ------------------------------------------------------------------ #
    # prefill
    # ------------------------------------------------------------------ #

    def cp_prefill(
        self,
        new_tokens: int,
        cached_tokens: int = 0,
        *,
        n_ranks: int = 1,
        algo: RingAlgo | None = None,
        batch: int = 1,
    ) -> PrefillLatency:
        """TTFT for a CP prefill round.

        Args:
            new_tokens: ``T`` per sequence.
            cached_tokens: ``P`` per sequence (0 = full prefill).
            n_ranks: CP ranks (hosts).
            algo: force a ring variant; ``None`` simulates both and returns
                the faster (what the tuned production heuristic achieves).
            batch: sequences in the fused batch.
        """
        if algo is None:
            kv = self.cp_prefill(
                new_tokens, cached_tokens, n_ranks=n_ranks, algo=RingAlgo.PASS_KV, batch=batch
            )
            if n_ranks == 1:
                return kv
            qq = self.cp_prefill(
                new_tokens, cached_tokens, n_ranks=n_ranks, algo=RingAlgo.PASS_Q, batch=batch
            )
            return kv if kv.total <= qq.total else qq

        self._check(new_tokens, n_ranks, batch)
        cfg, host, e = self.config, self.host, self.element_bytes
        layers = cfg.n_layers

        gemm_total = gemm_flops(cfg, new_tokens, batch=batch) / (n_ranks * host.gemm_flops)
        attn_total = attention_flops(cfg, new_tokens, cached_tokens, batch=batch) / (
            n_ranks * host.attn_flops
        )
        attn_per_iter = attn_total / (layers * n_ranks)

        if n_ranks > 1:
            if algo is RingAlgo.PASS_KV:
                shard = kv_bytes(cfg, new_tokens, cached_tokens, e) * batch / n_ranks
            else:
                shard = q_bytes(cfg, new_tokens, e) * batch / n_ranks
            sendrecv = host.message_latency + shard / host.ring_bandwidth
        else:
            sendrecv = 0.0

        exposed_per_layer = (n_ranks - 1) * max(0.0, sendrecv - attn_per_iter)
        ring_per_layer = attn_per_iter + (n_ranks - 1) * max(attn_per_iter, sendrecv)

        a2a_total = 0.0
        if algo is RingAlgo.PASS_Q and n_ranks > 1:
            tokens_per_rank = new_tokens * batch / n_ranks
            bytes_per_rank = all2all_bytes(cfg, tokens_per_rank, n_ranks, e)
            a2a_total = layers * (
                (n_ranks - 1) * host.message_latency + bytes_per_rank / host.all2all_bandwidth
            )

        overhead = self._elementwise_time(new_tokens * batch / n_ranks)
        if n_ranks > 1:
            overhead += layers * host.ring_setup_per_layer
        total = gemm_total + layers * ring_per_layer + a2a_total + overhead
        return PrefillLatency(
            algo=algo.value,
            n_ranks=n_ranks,
            gemm=gemm_total,
            attn=attn_total,
            sendrecv_per_iter=sendrecv,
            attn_per_iter=attn_per_iter,
            exposed_comm=layers * exposed_per_layer,
            all2all=a2a_total,
            allreduce=0.0,
            overhead=overhead,
            total=total,
        )

    def tp_prefill(self, tokens: int, *, n_nodes: int = 1, batch: int = 1) -> PrefillLatency:
        """TTFT for the multi-node tensor-parallel baseline (§4.2.2).

        Compute parallelizes perfectly over ``8 * n_nodes`` GPUs (KV heads
        replicated as needed), but each block's two activation AllReduces
        cross the inter-node fabric and sit on the critical path once
        ``n_nodes > 1``.
        """
        self._check(tokens, n_nodes, batch)
        cfg, host, e = self.config, self.host, self.element_bytes
        layers = cfg.n_layers

        gemm_total = gemm_flops(cfg, tokens, batch=batch) / (n_nodes * host.gemm_flops)
        attn_total = attention_flops(cfg, tokens, 0, batch=batch) / (n_nodes * host.attn_flops)

        allreduce_total = 0.0
        if n_nodes > 1:
            activation = tokens * batch * cfg.model_dim * e
            per_allreduce = (
                2.0 * activation * (n_nodes - 1) / n_nodes / host.allreduce_bandwidth
                + host.allreduce_latency * (n_nodes - 1)
            )
            allreduce_total = layers * 2 * per_allreduce

        overhead = self._elementwise_time(tokens * batch / n_nodes)
        total = gemm_total + attn_total + allreduce_total + overhead
        return PrefillLatency(
            algo="tp",
            n_ranks=n_nodes,
            gemm=gemm_total,
            attn=attn_total,
            sendrecv_per_iter=0.0,
            attn_per_iter=attn_total / layers,
            exposed_comm=allreduce_total,
            all2all=0.0,
            allreduce=allreduce_total,
            overhead=overhead,
            total=total,
        )

    # ------------------------------------------------------------------ #
    # decode
    # ------------------------------------------------------------------ #

    def cp_decode(self, context: int, *, batch: int = 1, n_ranks: int = 1) -> DecodeLatency:
        """TTIT for CP decode (ring pass-Q, Algorithm 4; §4.3).

        Per layer the attention path is: ``N`` partial attention ops over
        the rank's ``context / N`` KV shard for ``ceil(B / N)`` (padded)
        queries, ``N - 1`` latency-bound Q SendRecvs, and the output
        All2All — Table 8's rows, reproduced field by field.
        """
        self._check(context, n_ranks, batch)
        cfg, host, e = self.config, self.host, self.element_bytes
        layers = cfg.n_layers
        gpu = host.gpu

        weights = weight_bytes(cfg) / host.hbm_bandwidth
        eff_context = context // n_ranks
        queries_per_rank = -(-batch // n_ranks)

        # Per-GPU KV read: each GPU holds NKV / gpus_per_host heads' slice.
        kv_read_bytes = (
            queries_per_rank
            * 2.0
            * eff_context
            * cfg.kv_dim
            * e
            / host.gpus_per_host
        )
        attn_op = gpu.kernel_launch_overhead + kv_read_bytes / gpu.hbm_bandwidth
        attn_ring = n_ranks * attn_op

        if n_ranks > 1:
            q_msg = queries_per_rank * cfg.model_dim * e / host.gpus_per_host
            sendrecv = (n_ranks - 1) * (host.message_latency + q_msg / host.ring_bandwidth)
            a2a_bytes = (n_ranks - 1) * queries_per_rank * (cfg.model_dim + 1) * e
            all2all = 2.5 * host.message_latency + a2a_bytes / host.all2all_bandwidth
        else:
            sendrecv = 0.0
            all2all = 0.0

        whole = attn_ring + sendrecv + all2all
        overhead = layers * host.decode_layer_overhead
        total = weights + layers * whole + overhead
        return DecodeLatency(
            algo="pass-q",
            n_ranks=n_ranks,
            effective_context=eff_context,
            weights=weights,
            attn_op=attn_op,
            attn_ring=attn_ring,
            sendrecv=sendrecv,
            all2all=all2all,
            whole_attn=whole,
            overhead=overhead,
            total=total,
        )

    def tp_decode(self, context: int, *, batch: int = 1, n_nodes: int = 1) -> DecodeLatency:
        """TTIT for the TP baseline: weight streaming parallelizes over all
        GPUs, KV heads are replicated (each GPU still reads a full-context
        slice of its head), and two latency-bound AllReduces per layer cross
        nodes when ``n_nodes > 1``."""
        self._check(context, n_nodes, batch)
        cfg, host, e = self.config, self.host, self.element_bytes
        layers = cfg.n_layers
        gpu = host.gpu

        weights = weight_bytes(cfg) / (n_nodes * host.hbm_bandwidth)
        kv_read_bytes = batch * 2.0 * context * cfg.kv_dim * e / host.gpus_per_host
        attn_op = gpu.kernel_launch_overhead + kv_read_bytes / gpu.hbm_bandwidth

        allreduce = 0.0
        if n_nodes > 1:
            allreduce = 2 * (n_nodes - 1) * host.allreduce_latency

        whole = attn_op + allreduce
        overhead = layers * host.decode_layer_overhead
        total = weights + layers * whole + overhead
        return DecodeLatency(
            algo="tp",
            n_ranks=n_nodes,
            effective_context=context,
            weights=weights,
            attn_op=attn_op,
            attn_ring=attn_op,
            sendrecv=0.0,
            all2all=allreduce,
            whole_attn=whole,
            overhead=overhead,
            total=total,
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _elementwise_time(self, tokens_per_rank: float) -> float:
        """Non-GEMM token-wise prefill work (norms, RoPE, residuals, cache
        writes), modelled as ``elementwise_passes`` HBM sweeps over the
        activation per layer."""
        host = self.host
        bytes_per_layer = tokens_per_rank * self.config.model_dim * self.element_bytes
        return (
            self.config.n_layers
            * host.elementwise_passes
            * bytes_per_layer
            / host.hbm_bandwidth
        )

    def heuristic_config(self, n_ranks: int) -> HeuristicConfig:
        """Static :class:`HeuristicConfig` matching this simulator's
        hardware, for driving Algorithms 1/5 consistently with the model."""
        return HeuristicConfig(
            n_heads=self.config.n_heads,
            n_kv_heads=self.config.n_kv_heads,
            element_bytes=self.element_bytes,
            peak_compute=self.host.attn_flops,
            bandwidth=self.host.ring_bandwidth,
            world_size=n_ranks,
        )

    def best_algo(self, new_tokens: int, cached_tokens: int, *, n_ranks: int) -> RingAlgo:
        """Oracle selection: simulate both variants, return the faster."""
        kv = self.cp_prefill(new_tokens, cached_tokens, n_ranks=n_ranks, algo=RingAlgo.PASS_KV)
        qq = self.cp_prefill(new_tokens, cached_tokens, n_ranks=n_ranks, algo=RingAlgo.PASS_Q)
        return RingAlgo.PASS_KV if kv.total <= qq.total else RingAlgo.PASS_Q

    @staticmethod
    def _check(tokens: int, ranks: int, batch: int) -> None:
        if tokens < 1:
            raise ValueError(f"token count must be >= 1, got {tokens}")
        if ranks < 1:
            raise ValueError(f"rank count must be >= 1, got {ranks}")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
