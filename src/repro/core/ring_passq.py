"""Ring pass-Q attention — paper Algorithm 3 (Figure 4).

Dual of pass-KV: the (large, cached) KV shards stay resident and the (small)
query shards circulate. Partial outputs therefore end the ring *scattered*:
rank ``k`` holds ``O^k_s`` — the partial for rank ``s``'s queries against
rank ``k``'s KV — so a permute + All2All over the CP group restores them to
their source ranks before the merge. That All2All sits on the critical path
and is what the refined heuristic of Appendix C (Algorithm 5) accounts for.

pass-Q wins when ``T`` (new tokens) is small relative to the persistent KV
length ``P`` — the high-cache-hit-rate partial prefill and decode regimes —
because circulating Q moves ``T * NH * DH`` elements versus pass-KV's
``2 * (P + T) * NKV * DH``.
"""

from __future__ import annotations

import numpy as np

from repro.attention.flash import AttentionResult, flash_attention
from repro.core.merge import merge_partials
from repro.core.sharding import ShardedKV, ShardedQueries, pad_query_shards
from repro.distributed.process_group import SimProcessGroup
from repro.distributed.ring import source_rank_at_step


def ring_passq_prefill(
    group: SimProcessGroup,
    queries: list[ShardedQueries],
    kv_shards: list[ShardedKV],
    *,
    scale: float | None = None,
    block_size: int = 128,
    mask_fn=None,
) -> list[AttentionResult]:
    """Fused varseq ring pass-Q prefill (Algorithm 3).

    Args:
        group: lockstep process group.
        queries: per-rank query shards. Load-balanced sharding guarantees
            near-equal lengths; shards are padded to the max so ring
            messages are equal-sized (padding outputs are dropped).
        kv_shards: per-rank resident KV shards (cached + new), never moved.
        scale: attention score scale (default ``1/sqrt(DH)``).
        block_size: KV block size of the local flash kernel.
        mask_fn: optional absolute-coordinate mask override (windowed /
            sink attention).

    Returns:
        Per-rank exact :class:`AttentionResult`, trimmed back to each rank's
        original (pre-padding) query count.
    """
    n = group.world_size
    if len(queries) != n or len(kv_shards) != n:
        raise ValueError(
            f"need one query and KV shard per rank: world={n}, "
            f"queries={len(queries)}, kvs={len(kv_shards)}"
        )

    original_lengths = [len(q) for q in queries]
    padded, _ = pad_query_shards(list(queries))

    # traveling[k] = the query payload currently held by rank k.
    traveling: list[ShardedQueries] = list(padded)
    # computed[k][s] = partial result rank k computed for origin rank s.
    computed: list[dict[int, AttentionResult]] = [dict() for _ in range(n)]

    for step in range(n):
        for rank in range(n):
            src = source_rank_at_step(rank, step, n)
            q = traveling[rank]
            kv = kv_shards[rank]
            computed[rank][src] = flash_attention(
                q.q,
                kv.k,
                kv.v,
                q_pos=q.positions,
                k_pos=kv.positions,
                q_seq=q.seq_ids,
                k_seq=kv.seq_ids,
                causal=True,
                scale=scale,
                block_size=block_size,
                mask_fn=mask_fn,
            )
        if step < n - 1:
            traveling = group.ring_shift(traveling, step=step, tag="passq")

    # Permute + All2All: rank k sends O^k_s (as (out, lse)) back to rank s.
    matrix = [
        [
            (computed[holder][origin].out, computed[holder][origin].lse)
            for origin in range(n)
        ]
        for holder in range(n)
    ]
    restored = group.all_to_all(matrix, tag="passq-merge")

    results = []
    for rank in range(n):
        partials = [
            AttentionResult(out=out, lse=lse) for out, lse in restored[rank]
        ]
        merged = merge_partials(partials)
        keep = original_lengths[rank]
        results.append(AttentionResult(out=merged.out[:keep], lse=merged.lse[:keep]))
    return results
