"""Paper-vs-model deviation accounting.

Several regenerated tables embed the paper's published numbers as
``paper <column>`` columns. This module pairs them with the corresponding
model columns and produces deviation statistics — the quantitative version
of EXPERIMENTS.md's "status" column, and a global regression guard: a test
asserts the whole reproduction stays within its deviation budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.base import ExperimentResult


@dataclass(frozen=True)
class Deviation:
    """Model-vs-paper deviation summary for one column pair.

    Attributes:
        experiment_id: paper table/figure.
        column: model column name.
        n: number of compared rows.
        mean_rel: mean relative absolute deviation.
        max_rel: worst relative absolute deviation.
    """

    experiment_id: str
    column: str
    n: int
    mean_rel: float
    max_rel: float


def paired_columns(result: ExperimentResult) -> list[tuple[str, str]]:
    """``(model_column, paper_column)`` pairs found in a result.

    A pair exists when a header ``X`` has a counterpart ``paper X``
    (matching is case-sensitive on the suffix).
    """
    pairs = []
    for header in result.headers:
        if not isinstance(header, str) or header.startswith("paper "):
            continue
        partner = f"paper {header}"
        if partner in result.headers:
            pairs.append((header, partner))
    return pairs


def deviations(result: ExperimentResult) -> list[Deviation]:
    """Deviation stats for every paired column of one experiment."""
    out = []
    for model_col, paper_col in paired_columns(result):
        model = np.array(result.column(model_col), dtype=float)
        paper = np.array(result.column(paper_col), dtype=float)
        valid = paper != 0
        if not np.any(valid):
            continue
        rel = np.abs(model[valid] - paper[valid]) / np.abs(paper[valid])
        out.append(
            Deviation(
                experiment_id=result.experiment_id,
                column=model_col,
                n=int(valid.sum()),
                mean_rel=float(rel.mean()),
                max_rel=float(rel.max()),
            )
        )
    return out


def deviation_report(results: list[ExperimentResult]) -> ExperimentResult:
    """One summary table over every comparable experiment."""
    summary = ExperimentResult(
        experiment_id="Deviation summary",
        title="model vs paper, relative deviation per compared column",
        headers=["experiment", "column", "rows", "mean %", "max %"],
    )
    for result in results:
        for d in deviations(result):
            summary.add_row(
                d.experiment_id, d.column, d.n, 100 * d.mean_rel, 100 * d.max_rel
            )
    return summary


def worst_deviation(results: list[ExperimentResult]) -> float:
    """The single worst relative deviation across all compared columns."""
    worst = 0.0
    for result in results:
        for d in deviations(result):
            worst = max(worst, d.max_rel)
    return worst
