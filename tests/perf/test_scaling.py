"""Tests for scaling-analysis helpers."""

import pytest

from repro.model.config import llama3_405b_config
from repro.perf.hardware import gtt_host
from repro.perf.latency import LatencySimulator
from repro.perf.scaling import (
    amdahl_serial_fraction,
    parallelization_efficiency,
    scaling_ratio,
    speedup_curve,
)


class TestScalingMath:
    def test_scaling_ratio(self):
        assert scaling_ratio(8.0, 2.0) == 4.0
        with pytest.raises(ValueError):
            scaling_ratio(0.0, 1.0)

    def test_parallelization_efficiency(self):
        assert parallelization_efficiency(8.0, 1.0, 8) == pytest.approx(1.0)
        assert parallelization_efficiency(8.0, 2.0, 8) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            parallelization_efficiency(1.0, 1.0, 0)

    def test_speedup_curve(self):
        curve = speedup_curve({1: 10.0, 2: 5.0, 4: 3.0})
        assert curve[1] == 1.0
        assert curve[2] == 2.0
        assert curve[4] == pytest.approx(10 / 3)
        with pytest.raises(ValueError):
            speedup_curve({2: 5.0})

    def test_amdahl_perfect_scaling(self):
        lat = {n: 8.0 / n for n in (1, 2, 4, 8)}
        assert amdahl_serial_fraction(lat) == pytest.approx(0.0, abs=1e-12)

    def test_amdahl_pure_serial(self):
        lat = {n: 8.0 for n in (1, 2, 4, 8)}
        assert amdahl_serial_fraction(lat) == pytest.approx(1.0, abs=1e-12)

    def test_amdahl_recovers_planted_fraction(self):
        s = 0.2
        lat = {n: 10.0 * (s + (1 - s) / n) for n in (1, 2, 4, 8, 16)}
        assert amdahl_serial_fraction(lat) == pytest.approx(s, abs=1e-9)


class TestPaperScalingNumbers:
    def test_cp_efficiency_high_at_128k(self):
        sim = LatencySimulator(llama3_405b_config(), gtt_host())
        lat = {n: sim.cp_prefill(131072, n_ranks=n).total for n in (1, 2, 4, 8)}
        assert parallelization_efficiency(lat[1], lat[8], 8) > 0.85

    def test_tp_serial_fraction_dominates_cp(self):
        """Amdahl view of Figure 7: TP's exposed AllReduce behaves as a
        much larger serial fraction than CP's ring setup."""
        sim = LatencySimulator(llama3_405b_config(), gtt_host())
        cp = {n: sim.cp_prefill(131072, n_ranks=n).total for n in (1, 2, 4, 8)}
        tp = {n: sim.tp_prefill(131072, n_nodes=n).total for n in (1, 2, 4, 8)}
        assert amdahl_serial_fraction(tp) > 4 * amdahl_serial_fraction(cp)
