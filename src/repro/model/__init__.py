"""Model substrate: a NumPy Llama-style GQA transformer.

The paper's numerics run on Llama3 405B with row-wise FP8 feed-forward
weights. The reproduction needs two things from a model:

1. the *exact architecture family* (RMSNorm, RoPE, GQA attention, SwiGLU
   FFN, pre-norm residuals) at configurable scale, so end-to-end
   CP-vs-single-device logit equality is a meaningful test, and
2. the *true Llama3 405B configuration* (Table 9) for the analytic
   performance model.

Modules:

- :mod:`repro.model.config` — :class:`ModelConfig` with Table 9 presets.
- :mod:`repro.model.llama` — :class:`LlamaModel`, stage-decomposed so the
  CP engine can interleave per-rank local compute with ring attention.
- :mod:`repro.model.norms` / :mod:`repro.model.mlp` — RMSNorm and SwiGLU.
- :mod:`repro.model.quant` — row-wise FP8-style quantization stand-in.
- :mod:`repro.model.sampling` — greedy / temperature sampling.
"""

from repro.model.config import (
    ModelConfig,
    llama3_405b_config,
    llama3_70b_config,
    llama3_8b_config,
    tiny_config,
)
from repro.model.llama import LlamaModel
from repro.model.mlp import swiglu
from repro.model.norms import rms_norm
from repro.model.quant import QuantizedLinear, dequantize_rowwise, quantize_rowwise
from repro.model.sampling import sample_greedy, sample_temperature

__all__ = [
    "LlamaModel",
    "ModelConfig",
    "QuantizedLinear",
    "dequantize_rowwise",
    "llama3_405b_config",
    "llama3_70b_config",
    "llama3_8b_config",
    "quantize_rowwise",
    "rms_norm",
    "sample_greedy",
    "sample_temperature",
    "swiglu",
    "tiny_config",
]
