"""Cluster topology: nodes, NICs, and link characteristics.

Encodes the two Grand Teton platform variants from the paper (§4.1):

- **GTT** (Grand Teton Training): hosts inter-connected with a backend RDMA
  network at 400 Gb/s per GPU.
- **GTI** (Grand Teton Inference): hosts inter-connected over the frontend
  TCP/IP network at 100 Gb/s per GPU; the paper's traces show about 3 GB/s
  *achieved* per rank.

A CP rank in this system is one host (its 8 GPUs form a TP8 group); ring
messages between CP ranks are 8 parallel SendRecvs, one per KV head, so the
effective ring bandwidth per CP rank is ``gpus_per_node *`` per-GPU NIC
bandwidth (each GPU moves only its own KV head's slice).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

GBPS = 1e9 / 8  # 1 Gb/s in bytes/second


@dataclass(frozen=True)
class ClusterTopology:
    """Static description of the CP cluster wiring.

    Attributes:
        name: human-readable platform name.
        num_nodes: number of CP ranks (hosts).
        gpus_per_node: GPUs forming the intra-node TP group (paper: 8).
        internode_bandwidth: achieved point-to-point bandwidth per **GPU**
            for inter-host transfers, in bytes/s.
        intranode_bandwidth: per-GPU NVLink bandwidth in bytes/s (used by
            the TP baseline's AllReduce model).
        internode_latency: per-message latency for inter-host sends, in
            seconds (the alpha term of the alpha-beta model).
        intranode_latency: per-message latency for NVLink transfers.
    """

    name: str
    num_nodes: int
    gpus_per_node: int
    internode_bandwidth: float
    intranode_bandwidth: float
    internode_latency: float = 20e-6
    intranode_latency: float = 3e-6

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.gpus_per_node < 1:
            raise ValueError(f"gpus_per_node must be >= 1, got {self.gpus_per_node}")
        if self.internode_bandwidth <= 0 or self.intranode_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")

    @property
    def world_size(self) -> int:
        """Number of CP ranks (one per node)."""
        return self.num_nodes

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node

    @property
    def cp_link_bandwidth(self) -> float:
        """Aggregate inter-node bandwidth available to one CP ring hop.

        Ring SendRecv between two CP ranks is striped across the
        ``gpus_per_node`` per-KV-head point-to-point channels (Figure 5), so
        a CP-rank-level message of ``b`` bytes moves in
        ``b / cp_link_bandwidth`` seconds.
        """
        if self.num_nodes == 1:
            return self.gpus_per_node * self.intranode_bandwidth
        return self.gpus_per_node * self.internode_bandwidth

    @property
    def cp_link_latency(self) -> float:
        """Per-hop message latency for CP ring messages."""
        return self.intranode_latency if self.num_nodes == 1 else self.internode_latency

    def with_nodes(self, num_nodes: int) -> "ClusterTopology":
        """Same platform scaled to a different node count."""
        return replace(self, num_nodes=num_nodes)


def gtt_topology(num_nodes: int, *, gpus_per_node: int = 8) -> ClusterTopology:
    """Grand Teton Training: 400 Gb/s RDMA per GPU (paper §4.1).

    The achieved point-to-point bandwidth is derated to ~75% of line rate,
    consistent with the paper's observation that achieved bandwidth and
    compute sit below theoretical peaks (§3.4 footnote).
    """
    return ClusterTopology(
        name=f"GTT-{num_nodes}n",
        num_nodes=num_nodes,
        gpus_per_node=gpus_per_node,
        internode_bandwidth=0.75 * 400 * GBPS,
        intranode_bandwidth=450e9,  # H100 NVLink ~450 GB/s effective per GPU
    )


def gti_topology(num_nodes: int, *, gpus_per_node: int = 8) -> ClusterTopology:
    """Grand Teton Inference: 100 Gb/s TCP per GPU, ~3 GB/s achieved/rank.

    The paper's GPU traces on GTI report roughly 3 GB/s achieved per rank
    over the frontend network (§4.2.1); we encode that achieved figure
    directly rather than the NIC line rate.
    """
    return ClusterTopology(
        name=f"GTI-{num_nodes}n",
        num_nodes=num_nodes,
        gpus_per_node=gpus_per_node,
        internode_bandwidth=3e9,
        intranode_bandwidth=450e9,
        internode_latency=50e-6,  # TCP stack adds latency over RDMA
    )


def single_node_topology(*, gpus_per_node: int = 8) -> ClusterTopology:
    """One host: CP1, all communication over NVLink."""
    return ClusterTopology(
        name="single-node",
        num_nodes=1,
        gpus_per_node=gpus_per_node,
        internode_bandwidth=450e9,
        intranode_bandwidth=450e9,
    )
