"""Analytic performance model (roofline + alpha-beta communication).

The paper's evaluation ran on H100 fleets we do not have; its latency
numbers, however, are well explained by the roofline analysis the paper
itself develops in §3.4 and Appendices A/C. This package implements that
analysis as an executable model and calibrates it against the paper's own
anchor measurements (see :data:`repro.perf.hardware.CALIBRATION_ANCHORS`).
Every table and figure in the evaluation is regenerated from this model by
the scripts in ``benchmarks/``.

Modules:

- :mod:`repro.perf.hardware` — GPU/host specs for GTT (RDMA) and GTI (TCP)
  with the achieved-rate constants and their calibration provenance.
- :mod:`repro.perf.flops` — GEMM and causal-attention FLOP counting and
  MFU (Appendix A).
- :mod:`repro.perf.roofline` — message sizes (Tables 2-3) and the overlap
  predicates (Equations 1-3, 5).
- :mod:`repro.perf.latency` — :class:`LatencySimulator` producing TTFT and
  TTIT with full component breakdowns for CP (pass-KV / pass-Q) and the
  multi-node TP baseline.
- :mod:`repro.perf.breakdown` — structured per-component timing records
  mirroring the paper's Tables 5 and 8.
"""

from repro.perf.breakdown import DecodeLatency, PrefillLatency
from repro.perf.flops import (
    attention_flops,
    attention_pairs,
    gemm_flops,
    mfu,
    model_flops,
    weight_bytes,
)
from repro.perf.hardware import (
    CALIBRATION_ANCHORS,
    GPUSpec,
    HostSpec,
    gti_host,
    gtt_host,
)
from repro.perf.latency import LatencySimulator
from repro.perf.roofline import (
    can_hide_passkv_comm,
    can_hide_passq_comm,
    cp_attn_message_bytes,
    kv_bytes,
    q_bytes,
    tp_block_comm_bytes,
)

__all__ = [
    "CALIBRATION_ANCHORS",
    "DecodeLatency",
    "GPUSpec",
    "HostSpec",
    "LatencySimulator",
    "PrefillLatency",
    "attention_flops",
    "attention_pairs",
    "can_hide_passkv_comm",
    "can_hide_passq_comm",
    "cp_attn_message_bytes",
    "gemm_flops",
    "gti_host",
    "gtt_host",
    "kv_bytes",
    "mfu",
    "model_flops",
    "q_bytes",
    "tp_block_comm_bytes",
    "weight_bytes",
]
