"""Tests for the fused-batch scheduler and the chunked-prefill policy."""

import numpy as np
import pytest

from repro.serving.request import PrefillRequest
from repro.serving.scheduler import ChunkAssignment, ChunkedPrefillPolicy, Scheduler


def req(seq_id, n):
    return PrefillRequest(seq_id=seq_id, token_ids=np.arange(n) % 50)


class TestScheduler:
    def test_fifo_order(self):
        s = Scheduler(max_tokens_per_batch=1000)
        for i in range(3):
            s.submit(req(i, 10))
        batch = s.next_batch()
        assert batch.seq_ids == [0, 1, 2]
        assert s.pending() == 0

    def test_token_budget_splits(self):
        s = Scheduler(max_tokens_per_batch=25)
        s.submit(req(0, 20))
        s.submit(req(1, 20))
        first = s.next_batch()
        assert first.seq_ids == [0]
        second = s.next_batch()
        assert second.seq_ids == [1]

    def test_oversized_request_runs_alone(self):
        s = Scheduler(max_tokens_per_batch=8)
        s.submit(req(0, 100))
        batch = s.next_batch()
        assert batch.seq_ids == [0]

    def test_seq_cap(self):
        s = Scheduler(max_tokens_per_batch=10_000, max_seqs_per_batch=2)
        for i in range(5):
            s.submit(req(i, 4))
        assert s.next_batch().seq_ids == [0, 1]
        assert s.next_batch().seq_ids == [2, 3]
        assert s.next_batch().seq_ids == [4]

    def test_idle_returns_none(self):
        assert Scheduler().next_batch() is None

    def test_duplicate_seq_rejected(self):
        s = Scheduler()
        s.submit(req(0, 4))
        with pytest.raises(ValueError):
            s.submit(req(0, 6))

    def test_prompts_mapping(self):
        s = Scheduler()
        s.submit(req(3, 7))
        batch = s.next_batch()
        prompts = batch.prompts()
        assert list(prompts) == [3]
        assert prompts[3].shape == (7,)
        assert batch.total_new_tokens == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            Scheduler(max_tokens_per_batch=0)
        with pytest.raises(ValueError):
            Scheduler(max_seqs_per_batch=0)
        with pytest.raises(ValueError):
            PrefillRequest(seq_id=0, token_ids=np.zeros(0))
        with pytest.raises(ValueError):
            PrefillRequest(seq_id=0, token_ids=np.arange(3), max_new_tokens=-1)

    def test_exact_budget_boundary(self):
        """Requests that exactly exhaust the budget close the round; the
        next request starts a fresh one (no off-by-one under-fill)."""
        s = Scheduler(max_tokens_per_batch=30)
        s.submit(req(0, 10))
        s.submit(req(1, 20))
        s.submit(req(2, 1))
        first = s.next_batch()
        assert first.seq_ids == [0, 1]
        assert first.total_new_tokens == 30
        assert s.next_batch().seq_ids == [2]

    def test_one_over_budget_boundary(self):
        """One token over the budget defers the request to the next round."""
        s = Scheduler(max_tokens_per_batch=30)
        s.submit(req(0, 10))
        s.submit(req(1, 21))
        assert s.next_batch().seq_ids == [0]
        assert s.next_batch().seq_ids == [1]

    def test_oversized_request_never_merges(self):
        """An oversized request forms its own round even when later small
        requests would still fit under the nominal budget."""
        s = Scheduler(max_tokens_per_batch=8)
        s.submit(req(0, 100))
        s.submit(req(1, 2))
        first = s.next_batch()
        assert first.seq_ids == [0]
        assert s.next_batch().seq_ids == [1]

    def test_seq_cap_exactly_at_boundary(self):
        s = Scheduler(max_tokens_per_batch=10_000, max_seqs_per_batch=3)
        for i in range(3):
            s.submit(req(i, 4))
        assert s.next_batch().seq_ids == [0, 1, 2]
        assert s.next_batch() is None


class TestChunkedPrefillPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChunkedPrefillPolicy(chunk_tokens=0)
        with pytest.raises(ValueError):
            ChunkedPrefillPolicy(chunk_tokens=64, max_tokens_per_round=32)
        with pytest.raises(ValueError):
            ChunkedPrefillPolicy(max_seqs_per_round=0)
        with pytest.raises(ValueError):
            ChunkAssignment(seq_id=0, tokens=0)

    def test_long_prompt_spreads_across_rounds(self):
        p = ChunkedPrefillPolicy(chunk_tokens=16, max_tokens_per_round=16)
        round_ = p.build_round([(0, 40)])
        assert round_ == [ChunkAssignment(seq_id=0, tokens=16)]
        # 16 + 16 + 8: the tail chunk shrinks to the remaining tokens
        assert p.build_round([(0, 8)]) == [ChunkAssignment(seq_id=0, tokens=8)]

    def test_round_fuses_chunks_up_to_budget(self):
        p = ChunkedPrefillPolicy(chunk_tokens=16, max_tokens_per_round=40)
        round_ = p.build_round([(0, 100), (1, 100), (2, 100)])
        assert [(c.seq_id, c.tokens) for c in round_] == [(0, 16), (1, 16), (2, 8)]

    def test_exact_budget_no_sliver(self):
        p = ChunkedPrefillPolicy(chunk_tokens=16, max_tokens_per_round=32)
        round_ = p.build_round([(0, 16), (1, 16), (2, 16)])
        assert [(c.seq_id, c.tokens) for c in round_] == [(0, 16), (1, 16)]

    def test_seq_cap(self):
        p = ChunkedPrefillPolicy(chunk_tokens=4, max_tokens_per_round=1000, max_seqs_per_round=2)
        round_ = p.build_round([(0, 9), (1, 9), (2, 9)])
        assert [c.seq_id for c in round_] == [0, 1]

    def test_skips_drained_entries(self):
        p = ChunkedPrefillPolicy(chunk_tokens=8, max_tokens_per_round=32)
        round_ = p.build_round([(0, 0), (1, 5)])
        assert [(c.seq_id, c.tokens) for c in round_] == [(1, 5)]

    def test_empty_pending(self):
        assert ChunkedPrefillPolicy().build_round([]) == []


class TestSrpfOrder:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChunkedPrefillPolicy(order="sjf")
        assert ChunkedPrefillPolicy(order="srpf").order == "srpf"
        assert ChunkedPrefillPolicy().order == "fifo"

    def test_srpf_packs_shortest_remaining_first(self):
        p = ChunkedPrefillPolicy(chunk_tokens=16, max_tokens_per_round=40, order="srpf")
        round_ = p.build_round([(0, 100), (1, 6), (2, 30)])
        assert [(c.seq_id, c.tokens) for c in round_] == [(1, 6), (2, 16), (0, 16)]

    def test_srpf_sort_is_stable_on_ties(self):
        p = ChunkedPrefillPolicy(chunk_tokens=8, max_tokens_per_round=32, order="srpf")
        round_ = p.build_round([(3, 10), (1, 10), (2, 10)])
        # equal remainders keep FIFO (submission) order
        assert [c.seq_id for c in round_] == [3, 1, 2]

    def test_fifo_unchanged_by_knob(self):
        fifo = ChunkedPrefillPolicy(chunk_tokens=16, max_tokens_per_round=40)
        srpf_input = [(0, 100), (1, 6), (2, 30)]
        assert [c.seq_id for c in fifo.build_round(srpf_input)] == [0, 1, 2]
