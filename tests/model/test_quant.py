"""Tests for row-wise quantization."""

import numpy as np
import pytest

from repro.model.quant import QuantizedLinear, dequantize_rowwise, quantize_rowwise


class TestRowwiseQuant:
    def test_roundtrip_error_bounded(self, rng):
        """Reconstruction error <= half a quantization step per element."""
        w = rng.standard_normal((16, 32))
        codes, scales = quantize_rowwise(w)
        back = dequantize_rowwise(codes, scales)
        step = scales[:, None]
        assert np.all(np.abs(back - w) <= 0.5 * step + 1e-12)

    def test_codes_are_int8(self, rng):
        codes, _ = quantize_rowwise(rng.standard_normal((4, 8)))
        assert codes.dtype == np.int8
        assert np.abs(codes).max() <= 127

    def test_amax_maps_to_full_scale(self):
        w = np.array([[0.5, -2.0, 1.0]])
        codes, scales = quantize_rowwise(w)
        assert scales[0] == pytest.approx(2.0 / 127)
        assert codes[0, 1] == -127

    def test_zero_row(self):
        codes, scales = quantize_rowwise(np.zeros((2, 4)))
        assert np.all(codes == 0)
        assert np.all(scales == 0)
        np.testing.assert_array_equal(dequantize_rowwise(codes, scales), np.zeros((2, 4)))

    def test_per_row_scales_independent(self):
        w = np.array([[1.0, 0.0], [100.0, 0.0]])
        _, scales = quantize_rowwise(w)
        assert scales[1] == pytest.approx(100 * scales[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            quantize_rowwise(np.zeros(5))
        with pytest.raises(ValueError):
            dequantize_rowwise(np.zeros((2, 3), dtype=np.int8), np.zeros(3))


class TestQuantizedLinear:
    def test_apply_close_to_dense(self, rng):
        w = rng.standard_normal((32, 16))
        x = rng.standard_normal((4, 32))
        layer = QuantizedLinear.from_weights(w)
        dense = x @ w
        quant = layer.apply(x)
        rel = np.abs(quant - dense).max() / np.abs(dense).max()
        assert rel < 0.05  # ~1% typical, 5% bound

    def test_weight_bytes(self, rng):
        w = rng.standard_normal((32, 16))
        layer = QuantizedLinear.from_weights(w)
        assert layer.weight_bytes == 32 * 16 + 4 * 16  # codes + per-output-row scales

    def test_max_abs_error_bound(self, rng):
        w = rng.standard_normal((8, 8))
        layer = QuantizedLinear.from_weights(w)
        assert layer.max_abs_error(w) <= 0.5 * layer.scales.max() + 1e-12
