"""Windowed (StreamingLLM-style) decode through the CP ring."""

import numpy as np

from repro.attention.reference import reference_attention_with_lse
from repro.attention.windowed import windowed_attention_mask_fn
from repro.core.ring_decode import ring_passq_decode
from repro.distributed.process_group import SimProcessGroup

from test_ring_decode import build_decode_scenario


class TestWindowedDecode:
    def test_windowed_decode_matches_reference(self, rng):
        """Ring decode with a window+sink mask equals the single-device
        windowed kernel — attention-sink decode composes with CP."""
        world, batch = 3, 4
        ctx_lens = [25, 18, 31, 12]
        kv_shards, batch_obj, _ = build_decode_scenario(rng, world, batch, ctx_lens)
        fn = windowed_attention_mask_fn(8, sink_tokens=2)

        result, _ = ring_passq_decode(
            SimProcessGroup(world), kv_shards, batch_obj, step=0, mask_fn=fn
        )

        # single-device oracle per sequence, same mask
        full = {}
        for shard in kv_shards:
            for sid in np.unique(shard.seq_ids):
                full.setdefault(int(sid), []).append(shard)
        for b in range(batch):
            ks, vs, ps = [], [], []
            for shard in kv_shards:
                idx = np.nonzero(shard.seq_ids == b)[0]
                ks.append(shard.k[idx])
                vs.append(shard.v[idx])
                ps.append(shard.positions[idx])
            k = np.concatenate(ks)
            v = np.concatenate(vs)
            p = np.concatenate(ps)
            order = np.argsort(p)
            out, _ = reference_attention_with_lse(
                batch_obj.q[b : b + 1], k[order], v[order],
                q_pos=batch_obj.positions[b : b + 1], k_pos=p[order],
                mask_fn=fn,
            )
            np.testing.assert_allclose(result.out[b], out[0], atol=1e-10)

    def test_window_changes_decode_output(self, rng):
        world, batch = 2, 2
        kv_shards, batch_obj, _ = build_decode_scenario(rng, world, batch, [30, 22])
        exact, _ = ring_passq_decode(SimProcessGroup(world), kv_shards, batch_obj, step=0)
        windowed, _ = ring_passq_decode(
            SimProcessGroup(world), kv_shards, batch_obj, step=0,
            mask_fn=windowed_attention_mask_fn(4),
        )
        assert not np.allclose(exact.out, windowed.out)
