"""Tests for the experiment parameter grids."""

import pytest

from repro.workloads import traces


class TestTraces:
    def test_table4_sums(self):
        for p, t in traces.TABLE4_SWEEP:
            assert p + t == traces.TABLE4_TOTAL

    def test_table4_rows_have_paper_miss_rates(self):
        rows = traces.table4_rows()
        rates = [round(r["miss_rate"] * 100, 2) for r in rows]
        assert rates[0] == 1.0
        assert 5.0 in rates
        assert rates[-1] == 100.0

    def test_fig6_range(self):
        assert traces.FIG6_CONTEXT_LENGTHS[0] == 2048
        assert traces.FIG6_CONTEXT_LENGTHS[-1] == 131072
        assert traces.FIG6_CONTEXT_LENGTHS == sorted(traces.FIG6_CONTEXT_LENGTHS)

    def test_fig8_reaches_1m(self):
        assert traces.FIG8_CONTEXT_LENGTHS[-1] == 1_048_576
        assert traces.FIG8_RANKS == [8, 16]

    def test_table7_configs(self):
        labels = [label for label, _, _ in traces.TABLE7_CONFIGS]
        assert "CP4+TP8" in labels and "TP32" in labels

    def test_table5_points_match_paper(self):
        rates = [t / (p + t) for p, t in traces.TABLE5_POINTS]
        assert rates == pytest.approx([0.025, 0.10])

    def test_table8_scenarios(self):
        (ctx1, b1, ranks1), (ctx2, b2, ranks2) = traces.TABLE8_SCENARIOS
        assert (ctx1, b1) == (131072, 1)
        assert (ctx2, b2) == (32768, 4)
        assert ranks1 == ranks2 == [1, 2, 4]
