"""Tests for the byte-level tokenizer."""

import numpy as np
import pytest

from repro.core.engine import ContextParallelEngine
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel
from repro.model.tokenizer import BOS_ID, EOS_ID, VOCAB_SIZE, ByteTokenizer


class TestByteTokenizer:
    def test_ascii_roundtrip(self):
        tok = ByteTokenizer()
        text = "hello, context parallelism!"
        assert tok.decode(tok.encode(text)) == text

    def test_unicode_roundtrip(self):
        tok = ByteTokenizer()
        text = "naïve café — 1M tokens ✓"
        assert tok.decode(tok.encode(text)) == text

    def test_bos_eos(self):
        tok = ByteTokenizer()
        ids = tok.encode("ab", add_bos=True, add_eos=True)
        assert ids[0] == BOS_ID and ids[-1] == EOS_ID
        assert tok.decode(ids) == "ab"  # specials dropped

    def test_no_bos(self):
        tok = ByteTokenizer()
        ids = tok.encode("xy", add_bos=False)
        assert ids.tolist() == [120, 121]

    def test_vocab_bounds(self):
        tok = ByteTokenizer()
        ids = tok.encode("any text at all", add_eos=True)
        assert ids.max() < VOCAB_SIZE
        assert len(tok) == VOCAB_SIZE

    def test_invalid_bytes_replaced(self):
        tok = ByteTokenizer()
        # a lone continuation byte is invalid UTF-8
        assert "�" in tok.decode(np.array([0x80]))

    def test_through_cp_engine(self):
        """Text -> CP engine -> text, lossless vs single device."""
        tok = ByteTokenizer()
        model = LlamaModel(
            tiny_config(vocab_size=VOCAB_SIZE), seed=8
        )
        engine = ContextParallelEngine(model, world_size=2)
        prompt = tok.encode("ring attention")
        generated = engine.generate({0: prompt}, max_new_tokens=6)[0]
        # reference greedy loop
        history = list(prompt)
        for _ in range(6):
            logits = model.forward(np.array(history))
            history.append(int(np.argmax(logits[-1])))
        assert generated == history[-6:]
        assert isinstance(tok.decode(generated), str)
