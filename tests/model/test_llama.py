"""Tests for the stage-decomposed NumPy Llama model."""

import numpy as np
import pytest

from repro.attention.flash import flash_attention
from repro.model.config import tiny_config
from repro.model.llama import LlamaModel


class TestDeterminism:
    def test_same_seed_same_model(self):
        a = LlamaModel(tiny_config(), seed=5)
        b = LlamaModel(tiny_config(), seed=5)
        toks = np.arange(9)
        np.testing.assert_array_equal(a.forward(toks), b.forward(toks))

    def test_different_seed_different_model(self):
        a = LlamaModel(tiny_config(), seed=5)
        b = LlamaModel(tiny_config(), seed=6)
        toks = np.arange(9)
        assert not np.allclose(a.forward(toks), b.forward(toks))


class TestStages:
    def test_stage_composition_equals_forward(self, tiny_model):
        """Manually composing the stage API reproduces forward()."""
        toks = np.arange(14) % tiny_model.config.vocab_size
        pos = np.arange(14)
        x = tiny_model.embed(toks)
        for layer in range(tiny_model.config.n_layers):
            q, k, v = tiny_model.attn_qkv(layer, x, pos)
            attn = flash_attention(q, k, v, q_pos=pos, k_pos=pos, causal=True)
            x = tiny_model.attn_residual(layer, x, attn.out)
            x = tiny_model.ffn_residual(layer, x)
        logits = tiny_model.unembed(x)
        np.testing.assert_allclose(logits, tiny_model.forward(toks), atol=1e-12)

    def test_qkv_shapes(self, tiny_model):
        cfg = tiny_model.config
        x = tiny_model.embed(np.arange(5))
        q, k, v = tiny_model.attn_qkv(0, x, np.arange(5))
        assert q.shape == (5, cfg.n_heads, cfg.head_dim)
        assert k.shape == v.shape == (5, cfg.n_kv_heads, cfg.head_dim)

    def test_causality(self, tiny_model):
        """Changing a later token never affects earlier logits."""
        toks = np.arange(10) % tiny_model.config.vocab_size
        base = tiny_model.forward(toks)
        changed = toks.copy()
        changed[7] = (changed[7] + 1) % tiny_model.config.vocab_size
        out = tiny_model.forward(changed)
        np.testing.assert_allclose(out[:7], base[:7], atol=1e-12)
        assert not np.allclose(out[7:], base[7:])

    def test_relative_positions_matter(self, tiny_model):
        """RoPE: stretching the position spacing changes logits, while a
        uniform shift (same relative positions) does not."""
        toks = np.arange(6) % tiny_model.config.vocab_size
        a = tiny_model.forward(toks, positions=np.arange(6))
        shifted = tiny_model.forward(toks, positions=np.arange(6) + 50)
        stretched = tiny_model.forward(toks, positions=np.arange(6) * 3)
        np.testing.assert_allclose(shifted, a, atol=1e-9)
        assert not np.allclose(stretched, a)

    def test_fused_sequences_isolated(self, tiny_model):
        v = tiny_model.config.vocab_size
        a = np.arange(5) % v
        b = (np.arange(7) + 2) % v
        fused = np.concatenate([a, b])
        pos = np.concatenate([np.arange(5), np.arange(7)])
        seq = np.concatenate([np.zeros(5, dtype=np.int64), np.ones(7, dtype=np.int64)])
        out = tiny_model.forward(fused, positions=pos, seq_ids=seq)
        np.testing.assert_allclose(out[:5], tiny_model.forward(a), atol=1e-10)
        np.testing.assert_allclose(out[5:], tiny_model.forward(b), atol=1e-10)


class TestQuantizedFfn:
    def test_quantized_model_close_but_not_equal(self):
        cfg = tiny_config()
        dense = LlamaModel(cfg, seed=4, quantize_ffn=False)
        quant = LlamaModel(cfg, seed=4, quantize_ffn=True)
        toks = np.arange(8) % cfg.vocab_size
        a = dense.forward(toks)
        b = quant.forward(toks)
        assert not np.array_equal(a, b)
        # logits stay close in relative terms
        assert np.abs(a - b).max() / np.abs(a).max() < 0.1


class TestValidation:
    def test_token_range(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.embed(np.array([tiny_model.config.vocab_size]))
        with pytest.raises(ValueError):
            tiny_model.embed(np.array([[1, 2]]))

    def test_layer_range(self, tiny_model):
        x = tiny_model.embed(np.arange(3))
        with pytest.raises(ValueError):
            tiny_model.attn_qkv(99, x, np.arange(3))
