"""Multi-node tensor-parallel attention baseline (§4.2.2).

TP splits *heads* rather than *tokens*: every rank sees the full sequence
but only ``NH / G`` query heads. When the TP group outgrows the KV head
count (``G > NKV``), KV heads are replicated across ``G / NKV`` GPUs each —
"computation is still fully parallelized" but KV memory stops scaling,
which together with the per-block activation AllReduce is why the paper
scales out with CP instead.

This module implements the numeric semantics (for lossless-exactness tests
and head-sharding unit tests); the latency comparison against CP is the job
of :meth:`repro.perf.latency.LatencySimulator.tp_prefill` (Figure 7).
"""

from __future__ import annotations

import numpy as np

from repro.attention.flash import AttentionResult, flash_attention
from repro.distributed.process_group import SimProcessGroup


def tp_shard_heads(n_heads: int, n_kv_heads: int, group_size: int) -> list[dict]:
    """Head assignment for a TP group of ``group_size`` ranks.

    Query heads are distributed evenly (``NH / G`` per rank). KV heads are
    sharded when ``G <= NKV`` and replicated over ``G / NKV`` ranks each
    otherwise (the paper's multi-node TP configuration).

    Returns:
        One dict per rank: ``{"q_heads": ndarray, "kv_heads": ndarray}`` of
        global head indices.
    """
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    if n_heads % group_size != 0:
        raise ValueError(f"NH={n_heads} not divisible by group size {group_size}")
    if n_heads % n_kv_heads != 0:
        raise ValueError(f"NH={n_heads} not divisible by NKV={n_kv_heads}")
    q_per_rank = n_heads // group_size
    group = n_heads // n_kv_heads  # query heads per kv head
    shards = []
    for rank in range(group_size):
        q_heads = np.arange(rank * q_per_rank, (rank + 1) * q_per_rank, dtype=np.int64)
        kv_heads = np.unique(q_heads // group)
        shards.append({"q_heads": q_heads, "kv_heads": kv_heads})
    return shards


def tp_attention(
    group: SimProcessGroup,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    *,
    q_pos: np.ndarray | None = None,
    k_pos: np.ndarray | None = None,
    q_seq: np.ndarray | None = None,
    k_seq: np.ndarray | None = None,
    scale: float | None = None,
    block_size: int = 128,
) -> AttentionResult:
    """Exact GQA attention executed tensor-parallel across ``group``.

    Each rank computes its query-head slice against its (possibly
    replicated) KV-head slice; outputs concatenate across ranks — attention
    itself needs no reduction (the AllReduce in a real block belongs to the
    output projection, which the cost model charges separately). An
    AllGather of the head outputs stands in for that projection's data
    movement so the traced traffic is representative.

    Returns the same ``(O, LSE)`` a single-device kernel produces.
    """
    n = group.world_size
    nh, nkv = q.shape[1], k.shape[1]
    shards = tp_shard_heads(nh, nkv, n)

    partial = []
    for rank in range(n):
        qh = shards[rank]["q_heads"]
        kvh = shards[rank]["kv_heads"]
        # remap local query heads onto the local KV-head slice
        local_q = q[:, qh, :]
        local_k = k[:, kvh, :]
        local_v = v[:, kvh, :]
        # local GQA grouping: local NH / local NKV must stay integral
        if local_q.shape[1] % local_k.shape[1] != 0:
            raise ValueError(
                f"rank {rank}: local head split {local_q.shape[1]}/{local_k.shape[1]} "
                "is not a valid GQA grouping"
            )
        res = flash_attention(
            local_q,
            local_k,
            local_v,
            q_pos=q_pos,
            k_pos=k_pos,
            q_seq=q_seq,
            k_seq=k_seq,
            causal=True,
            scale=scale,
            block_size=block_size,
        )
        partial.append(res)

    gathered = group.all_gather(
        [{"out": p.out, "lse": p.lse} for p in partial], tag="tp-output"
    )
    # every rank reconstructs the full-head output identically; return rank 0's
    outs = gathered[0]
    out = np.concatenate([o["out"] for o in outs], axis=1)
    lse = np.concatenate([o["lse"] for o in outs], axis=1)
    return AttentionResult(out=out, lse=lse)
