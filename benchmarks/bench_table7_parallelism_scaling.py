"""Table 7: TTFT/TTIT across CP1/2/4 and TP16/32 at 128K."""

from repro.experiments import table7_parallelism


def bench_table7_parallelism(benchmark, paper_table):
    result = benchmark(table7_parallelism.run)
    paper_table(benchmark, result)
    rows = {r[0]: r for r in result.rows}

    # prefill: CP beats TP at matching node counts
    assert rows["CP2+TP8"][1] < rows["TP16"][1]
    assert rows["CP4+TP8"][1] < rows["TP32"][1]
    # decode: CP TTIT degrades with hosts; TP32 worse than TP8
    assert rows["CP4+TP8"][2] > rows["CP2+TP8"][2] > rows["CP1+TP8"][2]
    assert rows["TP32"][2] > rows["TP16"][2]
    # every model TTFT/TTIT within 12% of the paper's row
    for label, row in rows.items():
        assert abs(row[1] - row[3]) / row[3] < 0.12, label
        assert abs(row[2] - row[4]) / row[4] < 0.12, label


if __name__ == "__main__":
    print(table7_parallelism.run().render())
