"""Table 4: pass-KV vs pass-Q partial-prefill TTFT sweep on CP4."""

import numpy as np

from repro.experiments import table4_fig9_partial_prefill as t4


def bench_table4_sweep(benchmark, paper_table):
    result = benchmark(t4.run)
    paper_table(benchmark, result)

    kv = np.array(result.column("pass-KV ms"))
    qq = np.array(result.column("pass-Q ms"))
    paper_kv = np.array(result.column("paper pass-KV ms"))
    paper_q = np.array(result.column("paper pass-Q ms"))

    # every simulated TTFT within 15% of the paper's measurement
    assert np.all(np.abs(kv - paper_kv) / paper_kv < 0.15)
    assert np.all(np.abs(qq - paper_q) / paper_q < 0.15)

    # TTFT ~linear in miss rate: compare 10% -> 100% growth to ~10x-ish
    rates = np.array(result.column("miss%")) / 100
    ten = kv[np.isclose(rates, 0.10)][0]
    hundred = kv[np.isclose(rates, 1.0)][0]
    assert 4.0 < hundred / ten < 7.0  # sub-10x: fixed overheads at small T

    # Algorithm 5 agrees with the oracle except possibly at near-ties
    oracle = result.column("oracle")
    alg5 = result.column("Alg5")
    disagreements = [
        i for i, (o, a) in enumerate(zip(oracle, alg5)) if o != a
    ]
    for i in disagreements:
        ratio = result.rows[i][5]
        assert 0.95 < ratio < 1.05, "Alg5 may only disagree at near-ties"


if __name__ == "__main__":
    print(t4.run().render())
