"""Experiment regenerators: one module per paper table/figure.

Each module exposes ``run(...) -> ExperimentResult`` that recomputes the
corresponding table or figure from the calibrated analytic model (and, for
the losslessness/ablation experiments, from the numeric simulator). The
``benchmarks/`` harness wraps these with pytest-benchmark; ``report.py``
renders them all into EXPERIMENTS.md.

Index (paper -> module):

- Table 2  -> :mod:`repro.experiments.table2_comm`
- Figure 6 -> :mod:`repro.experiments.fig6_prefill_scaling`
- Figure 7 -> :mod:`repro.experiments.fig7_cp_vs_tp`
- Figure 8 -> :mod:`repro.experiments.fig8_million_token`
- Table 4 / Figure 9 -> :mod:`repro.experiments.table4_fig9_partial_prefill`
- Table 5  -> :mod:`repro.experiments.table5_breakdown`
- Table 6  -> :mod:`repro.experiments.table6_ttft_ttit`
- Table 7  -> :mod:`repro.experiments.table7_parallelism`
- Table 8  -> :mod:`repro.experiments.table8_decode_attention`
- Figure 10 -> :mod:`repro.experiments.fig10_heuristic`
- Ablations -> :mod:`repro.experiments.ablation_sharding`,
  :mod:`repro.experiments.ablation_allgather`
- §4.3 disaggregation (analytic) -> :mod:`repro.experiments.disaggregation`
- §4.3 disaggregation (measured runtime vs simulator prediction) ->
  :mod:`repro.experiments.disagg_runtime`
- preemption remedies under KV pressure ->
  :mod:`repro.experiments.preemption_modes`
- shared-prefix KV reuse (radix prefix cache, warm-vs-cold TTFT) ->
  :mod:`repro.experiments.prefix_reuse`
- fault injection & graceful degradation (fault rate x recovery policy,
  goodput/completion rate) -> :mod:`repro.experiments.fault_tolerance`
- cluster-tier routing (replica count x policy, prefix-affinity vs
  round-robin) -> :mod:`repro.experiments.cluster_routing`
"""

from repro.experiments.base import ExperimentResult

__all__ = ["ExperimentResult"]
